package index

import (
	"context"
	"sync"
	"testing"

	"hidb/internal/dataspace"
	"hidb/internal/simrand"
)

// testSharded builds a Sharded store over the same tuples as testStore with
// the same seed, so the two can be compared result for result.
func testSharded(t *testing.T, n int, seed uint64, shards int) *Sharded {
	t.Helper()
	ref := testStore(t, n, seed)
	s, err := NewSharded(ref.Schema(), ref.All(), shards)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestShardedSelectMatchesStore is the sharding correctness property: for
// any shard count, Select over the sharded store is bit-identical to the
// single-Store engine — same tuples, same order, same overflow signalling.
func TestShardedSelectMatchesStore(t *testing.T) {
	const n, seed = 4000, 7
	ref := testStore(t, n, seed)
	for _, shards := range []int{1, 2, 3, 8, 17} {
		sh := testSharded(t, n, seed, shards)
		if sh.NumShards() != shards {
			t.Fatalf("NumShards() = %d, want %d", sh.NumShards(), shards)
		}
		rng := simrand.New(seed + uint64(shards))
		for trial := 0; trial < 200; trial++ {
			q := randomQuery(ref.Schema(), rng)
			for _, limit := range []int{0, 1, 10, 100} {
				got := sh.Select(q, limit)
				want := ref.Select(q, limit)
				if len(got) != len(want) {
					t.Fatalf("shards=%d trial %d limit %d: got %d tuples, want %d (query %s)",
						shards, trial, limit, len(got), len(want), q)
				}
				for i := range got {
					if !got[i].Equal(want[i]) {
						t.Fatalf("shards=%d trial %d limit %d: tuple %d differs: %v vs %v",
							shards, trial, limit, i, got[i], want[i])
					}
				}
			}
			if gc, wc := sh.Count(q), ref.Count(q); gc != wc {
				t.Fatalf("shards=%d trial %d: Count = %d, want %d (query %s)", shards, trial, gc, wc, q)
			}
		}
	}
}

// TestShardedSelectBatchMatchesSelect pins the batch contract at the store
// layer: SelectBatch result i equals Select(qs[i], limit) exactly, for both
// engines.
func TestShardedSelectBatchMatchesSelect(t *testing.T) {
	const n, seed = 3000, 11
	ref := testStore(t, n, seed)
	sh := testSharded(t, n, seed, 5)
	rng := simrand.New(13)
	for trial := 0; trial < 20; trial++ {
		qs := make([]dataspace.Query, 32)
		for i := range qs {
			qs[i] = randomQuery(ref.Schema(), rng)
		}
		for _, eng := range []Engine{ref, sh} {
			got := eng.SelectBatch(context.Background(), qs, 20)
			if len(got) != len(qs) {
				t.Fatalf("batch returned %d results for %d queries", len(got), len(qs))
			}
			for i, q := range qs {
				want := ref.Select(q, 20)
				if len(got[i]) != len(want) {
					t.Fatalf("trial %d query %d: batch %d tuples, single %d", trial, i, len(got[i]), len(want))
				}
				for j := range want {
					if !got[i][j].Equal(want[j]) {
						t.Fatalf("trial %d query %d tuple %d differs", trial, i, j)
					}
				}
			}
		}
	}
}

// TestShardedBatchConcurrent hammers one sharded store from many
// goroutines; under -race this verifies the per-shard scratch pools and the
// fan-out share no unsynchronized state.
func TestShardedBatchConcurrent(t *testing.T) {
	sh := testSharded(t, 2000, 17, 4)
	ref := testStore(t, 2000, 17)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := simrand.New(100 + uint64(g))
			for trial := 0; trial < 30; trial++ {
				qs := make([]dataspace.Query, 16)
				for i := range qs {
					qs[i] = randomQuery(sh.Schema(), rng)
				}
				got := sh.SelectBatch(context.Background(), qs, 10)
				for i, q := range qs {
					want := ref.Select(q, 10)
					if len(got[i]) != len(want) {
						t.Errorf("goroutine %d: result %d has %d tuples, want %d", g, i, len(got[i]), len(want))
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestShardedCountFanOut covers the parallel Count path (stores above the
// fan-out threshold): the concurrent per-shard sum must equal the
// single-Store count for any query, including under concurrent callers
// (the -race check of the fan-out's state sharing).
func TestShardedCountFanOut(t *testing.T) {
	const n, seed = 20_000, 23 // above fanOutMin, so Count fans out
	ref := testStore(t, n, seed)
	sh := testSharded(t, n, seed, 6)
	rng := simrand.New(29)
	for trial := 0; trial < 100; trial++ {
		q := randomQuery(ref.Schema(), rng)
		if gc, wc := sh.Count(q), ref.Count(q); gc != wc {
			t.Fatalf("trial %d: fan-out Count = %d, want %d (query %s)", trial, gc, wc, q)
		}
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := simrand.New(200 + uint64(g))
			for trial := 0; trial < 25; trial++ {
				q := randomQuery(sh.Schema(), rng)
				if gc, wc := sh.Count(q), ref.Count(q); gc != wc {
					t.Errorf("goroutine %d: Count = %d, want %d", g, gc, wc)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestShardedEdgeCases(t *testing.T) {
	sch := testSchema(t)
	if _, err := NewSharded(sch, nil, 0); err == nil {
		t.Error("shard count 0 accepted")
	}
	// Empty store: one empty shard, empty answers.
	s, err := NewSharded(sch, nil, 4)
	if err != nil {
		t.Fatal(err)
	}
	if s.NumShards() != 1 {
		t.Errorf("empty store has %d shards, want 1", s.NumShards())
	}
	if got := s.Select(dataspace.UniverseQuery(sch), 10); len(got) != 0 {
		t.Errorf("empty store answered %d tuples", len(got))
	}
	// More shards than tuples: clamped so every shard is non-empty.
	tuples := []dataspace.Tuple{{1, 1, 5, 5}, {2, 2, 6, 6}, {3, 3, 7, 7}}
	s, err = NewSharded(sch, tuples, 10)
	if err != nil {
		t.Fatal(err)
	}
	if s.NumShards() != 3 {
		t.Errorf("3-tuple store has %d shards, want 3", s.NumShards())
	}
	if got := s.Select(dataspace.UniverseQuery(sch), 10); len(got) != 3 {
		t.Errorf("clamped store answered %d tuples, want 3", len(got))
	}
	if s.Size() != 3 || len(s.All()) != 3 {
		t.Errorf("Size/All inconsistent: %d/%d", s.Size(), len(s.All()))
	}
}
