// Sampled selectivity statistics.
//
// The v1 planner chose scan versus index with a hard-coded margin: any index
// path touching at most n/4 candidates beat the scan. That constant encodes
// an assumption about data shape that real datasets routinely violate — a
// 90%-selective predicate makes a 250k-candidate posting walk far slower
// than a scan that early-exits within a few thousand ranks, while a
// pathological distribution that hides all matches at the bottom of the
// rank space makes the same scan catastrophically slow.
//
// SelStats replaces the assumption with measurement: one stride sample of
// the relation, taken at Store construction, kept column-major so the
// planner can evaluate an actual query's full conjunction against it in a
// few microseconds. The sampled joint selectivity — not a per-predicate
// independence guess — drives the expected early-exit scan cost, and
// per-attribute equality selectivities (the sample's value-frequency second
// moment) summarize how selective a typical point predicate on each
// attribute is. A Sharded store builds one SelStats over the whole relation
// and shares it across shards: selectivity is a property of the data shape,
// not of any one priority band.
package index

import (
	"hidb/internal/dataspace"
)

// statsSampleMax caps the stride sample size. 1024 rows keep the sample
// resident in cache and a full-conjunction evaluation under a microsecond,
// while estimating selectivities to a few percent.
const statsSampleMax = 1 << 10

// SelStats holds the sampled selectivity statistics of one relation. Built
// once at Store construction and immutable afterwards; a Sharded store
// shares one instance across all shards.
type SelStats struct {
	// n is the relation size the sample was drawn from.
	n int
	// sampled is the number of sampled rows.
	sampled int
	// cols is the column-major sample: cols[i][j] is attribute i of sampled
	// row j.
	cols [][]int64
	// isCat mirrors the schema's attribute kinds.
	isCat []bool
	// eqSel[i] estimates, for categorical attribute i, the expected fraction
	// of the relation matched by an equality predicate whose value is drawn
	// with the data's own frequency — the sample's value-frequency second
	// moment Σ (c_v/S)². High-skew attributes score high (a typical equality
	// matches a lot), near-key attributes score near zero.
	eqSel []float64
}

// SampleSizeFor returns how many rows the deterministic stride sample of an
// n-tuple relation holds, and the stride between sampled ranks. A builder
// that persists the sample (the disk store's footer) uses the same rule, so
// the statistics it reconstructs match buildSelStats bit for bit.
func SampleSizeFor(n int) (sampled, stride int) {
	sampled = min(n, statsSampleMax)
	if sampled == 0 {
		return 0, 0
	}
	return sampled, n / sampled
}

// buildSelStats stride-samples the relation. Stride sampling is cheap, hits
// every priority band evenly, and is deterministic — the same relation
// always yields the same statistics.
func buildSelStats(schema *dataspace.Schema, byRank []dataspace.Tuple) *SelStats {
	n := len(byRank)
	sampled, stride := SampleSizeFor(n)
	rows := make([]dataspace.Tuple, sampled)
	for j := 0; j < sampled; j++ {
		rows[j] = byRank[j*stride]
	}
	return NewSelStats(schema, n, rows)
}

// NewSelStats computes selectivity statistics from an already-drawn sample
// of an n-tuple relation — rows must be the deterministic stride sample
// (see SampleSizeFor). Store construction uses it via buildSelStats; a
// disk store's Open feeds it the sample persisted in the file footer, which
// is what makes the on-disk engine's cost model identical to the in-memory
// one over the same relation.
func NewSelStats(schema *dataspace.Schema, n int, rows []dataspace.Tuple) *SelStats {
	d := schema.Dims()
	sampled := len(rows)
	st := &SelStats{
		n:       n,
		sampled: sampled,
		cols:    make([][]int64, d),
		isCat:   make([]bool, d),
		eqSel:   make([]float64, d),
	}
	for i := 0; i < d; i++ {
		st.isCat[i] = schema.Attr(i).Kind == dataspace.Categorical
		st.cols[i] = make([]int64, sampled)
	}
	if sampled == 0 {
		return st
	}
	for j, t := range rows {
		for i := 0; i < d; i++ {
			st.cols[i][j] = t[i]
		}
	}
	counts := make(map[int64]int, 64)
	for i := 0; i < d; i++ {
		if !st.isCat[i] {
			continue
		}
		clear(counts)
		for _, v := range st.cols[i] {
			counts[v]++
		}
		var m2 float64
		s := float64(sampled)
		for _, c := range counts {
			f := float64(c) / s
			m2 += f * f
		}
		st.eqSel[i] = m2
	}
	return st
}

// SampleRows returns the sampled rows, materialized row-major. The disk
// builder persists them in the store footer.
func (st *SelStats) SampleRows() []dataspace.Tuple {
	d := len(st.cols)
	rows := make([]dataspace.Tuple, st.sampled)
	for j := range rows {
		t := make(dataspace.Tuple, d)
		for i := 0; i < d; i++ {
			t[i] = st.cols[i][j]
		}
		rows[j] = t
	}
	return rows
}

// jointSel estimates the fraction of the relation matched by the whole
// conjunction, by evaluating it over the sample. The estimate is smoothed
// away from zero (half a row's worth) so the cost model never divides by
// zero and never treats "no sampled match" as "no match at all".
func (st *SelStats) jointSel(preds []dataspace.Pred) float64 {
	if st.sampled == 0 {
		return 1
	}
	matched := 0
	for j := 0; j < st.sampled; j++ {
		ok := true
		for i := range preds {
			p := &preds[i]
			v := st.cols[i][j]
			if st.isCat[i] {
				if !p.Wild && v != p.Value {
					ok = false
					break
				}
			} else if v < p.Lo || v > p.Hi {
				ok = false
				break
			}
		}
		if ok {
			matched++
		}
	}
	sel := float64(matched) / float64(st.sampled)
	if floor := 0.5 / float64(st.sampled); sel < floor {
		sel = floor
	}
	return sel
}

// EqSel returns the sampled expected equality selectivity of categorical
// attribute i (0 for numeric attributes).
func (st *SelStats) EqSel(i int) float64 { return st.eqSel[i] }

// SampleSize returns the number of sampled rows.
func (st *SelStats) SampleSize() int { return st.sampled }
