// Roaring-style bitmap indexes over rank space.
//
// For a low-cardinality categorical attribute, the rank-ascending posting
// list of each value is mirrored as a rankBitmap: the 32-bit rank space is
// split into 65536-rank blocks, and each non-empty block is stored as one of
// three containers — a sorted array of 16-bit offsets (sparse blocks), a
// 1024-word bitmap (dense blocks), or a list of [start,last] runs (clustered
// blocks). The representation is chosen per block by serialized size, the
// classic roaring heuristic.
//
// The payoff is the intersection path: ANDing the bitmaps of 2, 3 or more
// equality predicates is a word-parallel loop over the blocks both sides
// share — 64 ranks per AND — instead of a per-candidate merge or probe, and
// the result enumerates in ascending rank order, which is exactly the
// priority order Select must return.
package index

import (
	"math/bits"
	"sort"
)

// Container kinds.
const (
	containerArray uint8 = iota
	containerBitmap
	containerRun
)

// bitmapWords is the word count of a dense container: 65536 ranks / 64.
const bitmapWords = 1 << 10

// arrayMaxCard is the cardinality above which a sparse container converts
// to a dense bitmap (the roaring threshold: 4096 × 2 bytes = 8 KiB, the
// size of a full bitmap container).
const arrayMaxCard = 1 << 12

// rankRun is one maximal run of consecutive ranks, inclusive on both ends.
type rankRun struct{ start, last uint16 }

// container holds one 65536-rank block of a rankBitmap in whichever of the
// three representations serializes smallest.
type container struct {
	kind uint8
	// card is the number of ranks in the block, in [1, 65536].
	card int32
	// arr lists the block-local rank offsets ascending (containerArray).
	arr []uint16
	// words is the 1024-word dense bitmap (containerBitmap).
	words []uint64
	// runs lists maximal runs ascending (containerRun).
	runs []rankRun
}

// contains reports whether block-local offset v is in the container.
func (c *container) contains(v uint16) bool {
	switch c.kind {
	case containerArray:
		i := sort.Search(len(c.arr), func(i int) bool { return c.arr[i] >= v })
		return i < len(c.arr) && c.arr[i] == v
	case containerBitmap:
		return c.words[v>>6]&(1<<(v&63)) != 0
	default:
		i := sort.Search(len(c.runs), func(i int) bool { return c.runs[i].last >= v })
		return i < len(c.runs) && c.runs[i].start <= v
	}
}

// writeWords materializes the container into dst, a bitmapWords-long word
// slice, overwriting it.
func (c *container) writeWords(dst []uint64) {
	dst = dst[:bitmapWords]
	switch c.kind {
	case containerBitmap:
		copy(dst, c.words)
	case containerArray:
		clear(dst)
		for _, v := range c.arr {
			dst[v>>6] |= 1 << (v & 63)
		}
	default:
		clear(dst)
		for _, r := range c.runs {
			setRange(dst, r.start, r.last)
		}
	}
}

// andWords intersects the container into dst in place (dst &= c).
func (c *container) andWords(dst []uint64) {
	dst = dst[:bitmapWords]
	switch c.kind {
	case containerBitmap:
		for i, w := range c.words {
			dst[i] &= w
		}
	case containerArray:
		// Keep only dst bits that the array also holds: walk the array
		// once, building the kept words on the fly.
		var cur uint64
		wi := -1
		for _, v := range c.arr {
			w := int(v >> 6)
			if w != wi {
				if wi >= 0 {
					dst[wi] &= cur
				}
				for j := wi + 1; j < w; j++ {
					dst[j] = 0
				}
				wi, cur = w, 0
			}
			cur |= 1 << (v & 63)
		}
		if wi >= 0 {
			dst[wi] &= cur
		}
		for j := wi + 1; j < bitmapWords; j++ {
			dst[j] = 0
		}
	default:
		// Zero everything outside the runs; inside a run dst is kept.
		prev := -1
		for _, r := range c.runs {
			clearRange(dst, prev+1, int(r.start)-1)
			prev = int(r.last)
		}
		clearRange(dst, prev+1, (bitmapWords<<6)-1)
	}
}

// setRange sets bits [start, last] (block-local, inclusive) in words.
func setRange(words []uint64, start, last uint16) {
	sw, lw := int(start>>6), int(last>>6)
	sm := ^uint64(0) << (start & 63)
	lm := ^uint64(0) >> (63 - last&63)
	if sw == lw {
		words[sw] |= sm & lm
		return
	}
	words[sw] |= sm
	for i := sw + 1; i < lw; i++ {
		words[i] = ^uint64(0)
	}
	words[lw] |= lm
}

// clearRange zeroes bits [start, last] (block-local, inclusive) in words.
// An inverted range clears nothing.
func clearRange(words []uint64, start, last int) {
	if start > last {
		return
	}
	sw, lw := start>>6, last>>6
	sm := ^(^uint64(0) << (start & 63))
	lm := ^(^uint64(0) >> (63 - last&63))
	if sw == lw {
		words[sw] &= sm | lm
		return
	}
	words[sw] &= sm
	for i := sw + 1; i < lw; i++ {
		words[i] = 0
	}
	words[lw] &= lm
}

// rankBitmap is the roaring-style bitmap of one categorical value's ranks:
// ascending block keys (rank >> 16) with one container per non-empty block.
type rankBitmap struct {
	keys []uint16
	cs   []container
	card int
}

// buildRankBitmap converts a rank-ascending posting list into containers.
func buildRankBitmap(list []int32) *rankBitmap {
	b := &rankBitmap{card: len(list)}
	for lo := 0; lo < len(list); {
		key := uint16(list[lo] >> 16)
		hi := lo
		for hi < len(list) && uint16(list[hi]>>16) == key {
			hi++
		}
		b.keys = append(b.keys, key)
		b.cs = append(b.cs, buildContainer(list[lo:hi]))
		lo = hi
	}
	return b
}

// buildContainer picks the smallest representation for one block's ranks
// (global ranks sharing one high-16 key, ascending).
func buildContainer(ranks []int32) container {
	// Count maximal runs in one pass.
	runs := 1
	for i := 1; i < len(ranks); i++ {
		if ranks[i] != ranks[i-1]+1 {
			runs++
		}
	}
	card := len(ranks)
	runBytes, arrBytes, bmpBytes := 4*runs, 2*card, 8*bitmapWords
	if card >= arrayMaxCard {
		arrBytes = bmpBytes + 1 // arrays beyond the threshold are never used
	}
	switch {
	case runBytes < arrBytes && runBytes < bmpBytes:
		c := container{kind: containerRun, card: int32(card), runs: make([]rankRun, 0, runs)}
		start := uint16(ranks[0])
		prev := start
		for _, r := range ranks[1:] {
			v := uint16(r)
			if v != prev+1 {
				c.runs = append(c.runs, rankRun{start, prev})
				start = v
			}
			prev = v
		}
		c.runs = append(c.runs, rankRun{start, prev})
		return c
	case arrBytes <= bmpBytes:
		c := container{kind: containerArray, card: int32(card), arr: make([]uint16, card)}
		for i, r := range ranks {
			c.arr[i] = uint16(r)
		}
		return c
	default:
		c := container{kind: containerBitmap, card: int32(card), words: make([]uint64, bitmapWords)}
		for _, r := range ranks {
			v := uint16(r)
			c.words[v>>6] |= 1 << (v & 63)
		}
		return c
	}
}

// bitmapIndex maps a categorical attribute's values to their rank bitmaps.
type bitmapIndex struct {
	m map[int64]*rankBitmap
}

// get returns the value's bitmap, nil when the value is absent.
func (bi *bitmapIndex) get(v int64) *rankBitmap {
	if bi == nil {
		return nil
	}
	return bi.m[v]
}

// bitmapCursor walks the common block keys of several rankBitmaps.
type bitmapCursor struct {
	bms []*rankBitmap
	idx []int
}

// next advances to the next block key present in every bitmap, returning the
// key and the per-bitmap container indexes (aliased, valid until the next
// call). ok=false means the intersection is exhausted.
func (c *bitmapCursor) next() (key uint16, ok bool) {
	if len(c.bms) == 0 {
		return 0, false
	}
	if c.idx == nil {
		c.idx = make([]int, len(c.bms))
	}
	for {
		if c.idx[0] >= len(c.bms[0].keys) {
			return 0, false
		}
		target := c.bms[0].keys[c.idx[0]]
		matched := true
		for i := 1; i < len(c.bms); i++ {
			keys := c.bms[i].keys
			j := c.idx[i]
			for j < len(keys) && keys[j] < target {
				j++
			}
			c.idx[i] = j
			if j == len(keys) {
				return 0, false
			}
			if keys[j] != target {
				// Restart from the larger key.
				if keys[j] > target {
					k := c.idx[0]
					for k < len(c.bms[0].keys) && c.bms[0].keys[k] < keys[j] {
						k++
					}
					c.idx[0] = k
				}
				matched = false
				break
			}
		}
		if matched {
			return target, true
		}
	}
}

// advance moves every cursor past the current common key. Call after
// processing the containers of a matched key.
func (c *bitmapCursor) advance() {
	for i := range c.idx {
		c.idx[i]++
	}
}

// smallestContainer returns the index of the lowest-cardinality container at
// the current common key.
func (c *bitmapCursor) smallestContainer() int {
	best, bestCard := 0, c.bms[0].cs[c.idx[0]].card
	for i := 1; i < len(c.bms); i++ {
		if card := c.bms[i].cs[c.idx[i]].card; card < bestCard {
			best, bestCard = i, card
		}
	}
	return best
}

// sparseIntersectMax is the smallest-container cardinality at or below which
// a block intersection iterates that container probing the others, instead
// of materializing and ANDing full 1024-word bitmaps.
const sparseIntersectMax = 256

// intersectInto appends the ranks common to all bitmaps to dst in
// ascending order and returns the extended slice. max >= 0 truncates the
// result to max ranks (the limit+1 early exit — valid only when no
// residual filtering follows); max < 0 materializes the full intersection.
// words must be a bitmapWords-long scratch slice. The append-into-a-buffer
// shape (rather than a per-rank callback) is deliberate: a callback would
// capture the caller's accumulator and drag it to the heap, breaking the
// one-allocation Select contract.
func intersectInto(bms []*rankBitmap, words []uint64, dst []int32, max int) []int32 {
	var idxArr [shapeMaxDims]int
	cur := bitmapCursor{bms: bms}
	if len(bms) <= len(idxArr) {
		cur.idx = idxArr[:len(bms)]
	}
	for {
		key, ok := cur.next()
		if !ok {
			return dst
		}
		base := int32(key) << 16
		small := cur.smallestContainer()
		if sc := &bms[small].cs[cur.idx[small]]; sc.card <= sparseIntersectMax {
			// Sparse block: iterate the smallest container, probe the rest.
			dst = appendSparse(bms, cur.idx, small, sc, base, dst)
		} else {
			bms[0].cs[cur.idx[0]].writeWords(words)
			for i := 1; i < len(bms); i++ {
				bms[i].cs[cur.idx[i]].andWords(words)
			}
			for wi, w := range words {
				for w != 0 {
					b := bits.TrailingZeros64(w)
					w &= w - 1
					dst = append(dst, base|int32(wi)<<6|int32(b))
				}
			}
		}
		if max >= 0 && len(dst) >= max {
			return dst[:max]
		}
		cur.advance()
	}
}

// probeOthers reports whether block-local offset v is present in every
// bitmap's current container except the small-th (the one being iterated).
func probeOthers(bms []*rankBitmap, idx []int, small int, v uint16) bool {
	for i := range bms {
		if i == small {
			continue
		}
		if !bms[i].cs[idx[i]].contains(v) {
			return false
		}
	}
	return true
}

// appendSparse intersects one block by iterating its smallest container and
// probing the others, appending surviving ranks to dst ascending.
func appendSparse(bms []*rankBitmap, idx []int, small int, sc *container, base int32, dst []int32) []int32 {
	switch sc.kind {
	case containerArray:
		for _, v := range sc.arr {
			if probeOthers(bms, idx, small, v) {
				dst = append(dst, base|int32(v))
			}
		}
	case containerRun:
		for _, r := range sc.runs {
			for v := int32(r.start); v <= int32(r.last); v++ {
				if probeOthers(bms, idx, small, uint16(v)) {
					dst = append(dst, base|v)
				}
			}
		}
	default:
		for wi, w := range sc.words {
			for w != 0 {
				b := bits.TrailingZeros64(w)
				w &= w - 1
				v := uint16(wi<<6 | b)
				if probeOthers(bms, idx, small, v) {
					dst = append(dst, base|int32(v))
				}
			}
		}
	}
	return dst
}

// countSparse intersects one block by iterating its smallest container and
// probing the others, returning the survivor count.
func countSparse(bms []*rankBitmap, idx []int, small int, sc *container) int {
	c := 0
	switch sc.kind {
	case containerArray:
		for _, v := range sc.arr {
			if probeOthers(bms, idx, small, v) {
				c++
			}
		}
	case containerRun:
		for _, r := range sc.runs {
			for v := int32(r.start); v <= int32(r.last); v++ {
				if probeOthers(bms, idx, small, uint16(v)) {
					c++
				}
			}
		}
	default:
		for wi, w := range sc.words {
			for w != 0 {
				b := bits.TrailingZeros64(w)
				w &= w - 1
				if probeOthers(bms, idx, small, uint16(wi<<6|b)) {
					c++
				}
			}
		}
	}
	return c
}

// intersectCount returns |AND of all bitmaps| without enumerating: dense
// blocks are popcounted word-parallel. words must be a bitmapWords-long
// scratch slice.
func intersectCount(bms []*rankBitmap, words []uint64) int {
	var idxArr [shapeMaxDims]int
	cur := bitmapCursor{bms: bms}
	if len(bms) <= len(idxArr) {
		cur.idx = idxArr[:len(bms)]
	}
	total := 0
	for {
		_, ok := cur.next()
		if !ok {
			return total
		}
		small := cur.smallestContainer()
		if sc := &bms[small].cs[cur.idx[small]]; sc.card <= sparseIntersectMax {
			total += countSparse(bms, cur.idx, small, sc)
		} else {
			bms[0].cs[cur.idx[0]].writeWords(words)
			for i := 1; i < len(bms); i++ {
				bms[i].cs[cur.idx[i]].andWords(words)
			}
			for _, w := range words {
				total += bits.OnesCount64(w)
			}
		}
		cur.advance()
	}
}
