// Package index implements the query-evaluation engine behind the simulated
// hidden-database server: given a form query it returns the qualifying
// tuples in descending priority order, stopping as soon as it has one more
// than the server's return limit k.
//
// # Columnar layout
//
// Tuples are stored twice: once as the row slice the server hands back to
// callers (byRank, in descending priority order), and once as
// struct-of-arrays columns — one contiguous []int64 per attribute, indexed
// by rank. All predicate evaluation happens on the columns: checking
// whether the tuple at some rank satisfies a predicate is a single load
// from a dense array, with no per-tuple pointer chase and no per-attribute
// schema lookup (the attribute kinds are flattened into a []bool once at
// build time).
//
// # Access paths
//
// Three access paths are maintained and chosen between per query, the way
// a (very small) relational engine would:
//
//   - a priority-ordered columnar scan, cheap when the query is broad
//     (overflowing queries terminate after k+1 matches);
//   - per-attribute secondary indexes — rank-ascending posting lists for
//     categorical equality predicates and value-sorted columns for numeric
//     ranges — cheap when one predicate is selective;
//   - the intersection of the two most selective predicates: posting ∩
//     posting via a galloping (exponential-search) merge of the two
//     rank-ascending lists, and posting ∩ range (or range ∩ range/equality)
//     via a precomputed rank→sorted-position permutation that answers "is
//     this rank inside the value range?" with one load and two compares.
//
// # Cost model
//
// The planner computes the exact candidate count of every usable predicate
// (posting-list length / binary-searched range width), takes the two
// tightest, and falls back to the scan unless the best index path touches
// at most n/4 candidates (the scan early-exits after k+1 matches, so a
// broad index path would only add sorting work). Count uses the same
// planner with the full n as the scan cost, because counting cannot
// early-exit.
//
// # Allocation discipline
//
// Select performs one allocation per call — the result slice, sized
// exactly min(limit+1, candidates) — regardless of access path. The
// numeric-range path needs its candidate ranks in rank order; instead of
// the allocating sort.Slice of a fresh rank slice, it filters into a
// sync.Pool-recycled scratch buffer and sorts with the allocation-free
// slices.Sort. Count allocates nothing. The scratch pool is per-Store, so
// the shards of a Sharded store never contend on a shared pool.
package index

import (
	"context"
	"fmt"
	"slices"
	"sort"
	"sync"

	"hidb/internal/dataspace"
)

// Store holds one relation, its priority order, and its secondary indexes.
// A Store is immutable after New and safe for concurrent readers.
type Store struct {
	schema *dataspace.Schema
	// byRank lists the tuples in descending priority order: byRank[0] is
	// the tuple the server prefers to return first.
	byRank []dataspace.Tuple
	// isCat flattens the schema's attribute kinds for branch-friendly
	// predicate checks.
	isCat []bool
	// cols is the columnar mirror of byRank: cols[i][r] == byRank[r][i].
	cols [][]int64
	// post[i] maps a categorical value to the ranks holding it, ascending.
	post []map[int64][]int32
	// sortedVal[i] is numeric column i's values sorted ascending (ties in
	// rank order); sortedRank[i] carries the rank of each sorted cell.
	sortedVal  [][]int64
	sortedRank [][]int32
	// rankPos[i][r] is the position of rank r inside sortedVal[i] — the
	// rank→sorted-position permutation the intersection paths use to test
	// range membership in O(1).
	rankPos [][]int32
	// scratch recycles the rank buffers of the numeric-range path. It is
	// per-Store (not package-global) so that independent shards of a
	// Sharded store never contend on one pool.
	scratch sync.Pool
}

// New builds a Store over tuples already arranged in descending priority
// order. The tuples must all validate against the schema.
func New(schema *dataspace.Schema, byRank []dataspace.Tuple) (*Store, error) {
	if schema == nil {
		return nil, fmt.Errorf("index: nil schema")
	}
	d := schema.Dims()
	for r, t := range byRank {
		if err := t.Validate(schema); err != nil {
			return nil, fmt.Errorf("index: tuple at rank %d: %w", r, err)
		}
	}
	n := len(byRank)
	s := &Store{
		schema:     schema,
		byRank:     byRank,
		scratch:    sync.Pool{New: func() any { return new([]int32) }},
		isCat:      make([]bool, d),
		cols:       make([][]int64, d),
		post:       make([]map[int64][]int32, d),
		sortedVal:  make([][]int64, d),
		sortedRank: make([][]int32, d),
		rankPos:    make([][]int32, d),
	}
	for i := 0; i < d; i++ {
		col := make([]int64, n)
		for r, t := range byRank {
			col[r] = t[i]
		}
		s.cols[i] = col
		if schema.Attr(i).Kind == dataspace.Categorical {
			s.isCat[i] = true
			m := make(map[int64][]int32)
			for r, v := range col {
				m[v] = append(m[v], int32(r))
			}
			s.post[i] = m
		} else {
			perm := make([]int32, n)
			for r := range perm {
				perm[r] = int32(r)
			}
			sort.Slice(perm, func(a, b int) bool {
				va, vb := col[perm[a]], col[perm[b]]
				if va != vb {
					return va < vb
				}
				return perm[a] < perm[b]
			})
			vals := make([]int64, n)
			pos := make([]int32, n)
			for p, r := range perm {
				vals[p] = col[r]
				pos[r] = int32(p)
			}
			s.sortedVal[i] = vals
			s.sortedRank[i] = perm
			s.rankPos[i] = pos
		}
	}
	return s, nil
}

// Size returns the number of tuples in the store.
func (s *Store) Size() int { return len(s.byRank) }

// Schema returns the store's schema.
func (s *Store) Schema() *dataspace.Schema { return s.schema }

// All returns the tuples in priority order. The slice and its tuples are
// shared; callers must not mutate them.
func (s *Store) All() []dataspace.Tuple { return s.byRank }

// coversAt reports whether the tuple at rank r satisfies every predicate,
// reading the columns directly.
func (s *Store) coversAt(preds []dataspace.Pred, r int32) bool {
	for i := range preds {
		p := &preds[i]
		v := s.cols[i][r]
		if s.isCat[i] {
			if !p.Wild && v != p.Value {
				return false
			}
		} else if v < p.Lo || v > p.Hi {
			return false
		}
	}
	return true
}

// lowerBound returns the first index with vals[i] >= x.
func lowerBound(vals []int64, x int64) int {
	lo, hi := 0, len(vals)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if vals[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// rangeBounds returns the half-open segment of the sorted column whose
// values lie in [lo, hi]. An inverted range (lo > hi, constructible via
// Query.WithRange, which never validates) clamps to an empty segment so
// the planner sees zero candidates instead of a negative count.
func rangeBounds(vals []int64, lo, hi int64) (from, to int) {
	from = lowerBound(vals, lo)
	to = lowerBound(vals, hi+1)
	if to < from {
		to = from
	}
	return from, to
}

// plan describes the access path chosen for a query: a primary candidate
// enumerator plus an optional secondary intersection filter.
type plan struct {
	// primary is the attribute of the primary access path; -1 means the
	// priority-ordered columnar scan.
	primary int
	// m is the primary path's exact candidate count.
	m int
	// list is the primary posting list (categorical primary).
	list []int32
	// from, to bound the primary sorted-column segment (numeric primary).
	from, to int
	// secondary is the attribute of the second-tightest path; -1 = none.
	secondary int
	// secList is the secondary posting list (categorical secondary under a
	// categorical primary — the galloping-merge case).
	secList []int32
	// secFrom, secTo bound the secondary rank→sorted-position window
	// (numeric secondary).
	secFrom, secTo int32
	// bound counts the predicates that constrain the query at all.
	bound int
}

// choosePlan picks the cheapest access path for the predicates. maxCost is
// the candidate count above which the scan wins (n/4 for Select, whose
// scan early-exits; n for Count, whose scan cannot).
func (s *Store) choosePlan(preds []dataspace.Pred, maxCost int) plan {
	pl := plan{primary: -1, secondary: -1}
	best1, best2 := -1, -1
	var m1, m2 int
	var list1, list2 []int32
	var from1, to1, from2, to2 int
	for i := range preds {
		p := &preds[i]
		var m, from, to int
		var list []int32
		if s.isCat[i] {
			if p.Wild {
				continue
			}
			list = s.post[i][p.Value]
			m = len(list)
		} else {
			if p.Lo == dataspace.NegInf && p.Hi == dataspace.PosInf {
				continue
			}
			from, to = rangeBounds(s.sortedVal[i], p.Lo, p.Hi)
			m = to - from
		}
		pl.bound++
		switch {
		case best1 < 0 || m < m1:
			best2, m2, list2, from2, to2 = best1, m1, list1, from1, to1
			best1, m1, list1, from1, to1 = i, m, list, from, to
		case best2 < 0 || m < m2:
			best2, m2, list2, from2, to2 = i, m, list, from, to
		}
	}
	if best1 < 0 || m1 > maxCost {
		return plan{primary: -1, secondary: -1, bound: pl.bound}
	}
	pl.primary, pl.m = best1, m1
	pl.list, pl.from, pl.to = list1, from1, to1
	if best2 >= 0 {
		pl.secondary = best2
		if s.isCat[best2] {
			pl.secList = list2
		} else {
			pl.secFrom, pl.secTo = int32(from2), int32(to2)
		}
	}
	return pl
}

// getScratch returns a pooled rank buffer with at least the given capacity,
// so a steady query stream allocates nothing beyond its result slices.
func (s *Store) getScratch(capacity int) *[]int32 {
	p := s.scratch.Get().(*[]int32)
	if cap(*p) < capacity {
		*p = make([]int32, 0, capacity)
	}
	return p
}

// Select returns up to limit+1 tuples matching q, in descending priority
// order. Returning limit+1 tuples signals the caller that the true result
// exceeds limit (the server's overflow condition). The returned slice shares
// tuple storage with the store.
func (s *Store) Select(q dataspace.Query, limit int) []dataspace.Tuple {
	if limit < 0 {
		limit = 0
	}
	want := limit + 1
	n := len(s.byRank)
	preds := q.Preds()
	pl := s.choosePlan(preds, n/4)
	switch {
	case pl.primary < 0:
		out := make([]dataspace.Tuple, 0, min(want, n))
		for r := 0; r < n; r++ {
			if s.coversAt(preds, int32(r)) {
				out = append(out, s.byRank[r])
				if len(out) == want {
					break
				}
			}
		}
		return out
	case s.isCat[pl.primary]:
		if pl.secondary >= 0 && s.isCat[pl.secondary] && useGallop(len(pl.secList), n) {
			return s.selectGallop(preds, pl, want)
		}
		return s.selectPosting(preds, pl, want)
	default:
		return s.selectRange(preds, pl, want)
	}
}

// useGallop decides how a posting ∩ posting intersection tests membership
// of each driving-list rank in the secondary list: a galloping cursor over
// the secondary list versus one load from the secondary attribute's column.
// The driving (shorter) list is walked in full either way, so this is a
// per-candidate cost question. Measured on the paper's workloads (n ≈ 50k,
// every column L2-resident) the single predictable column load beats the
// ~log2(m2) branchy probes of galloping decisively — Figure 11a runs ~30%
// faster on column probes. Galloping pays off only when the column itself
// falls out of cache (multi-million-row stores) while the secondary list
// stays small enough to remain resident.
//
// The intersection filter is intentionally open-coded in selectPosting,
// selectGallop and Count's categorical branch rather than shared through a
// per-rank callback: the loops capture their accumulators (the result
// slice / the counter), so a closure-based iterator would escape them to
// the heap and break the one-allocation Select contract the benchmarks
// pin. TestGallopPathsMatchColumnProbe keeps the copies equivalent.
func useGallop(m2, n int) bool {
	return m2 <= 2048 && n >= colCacheTuples
}

// colCacheTuples is the store size (8-byte column cells, ~32 MiB — a
// typical LLC) beyond which columns stop being cache-resident. It is a
// variable only so tests can lower it to drive the galloping paths on
// test-sized stores.
var colCacheTuples = 4 << 20

// selectPosting walks the primary posting list (already rank-ascending),
// rejecting candidates with the cheapest test for the secondary predicate —
// a rank→sorted-position window check (numeric) or a single column load
// (categorical) — before the full predicate check.
func (s *Store) selectPosting(preds []dataspace.Pred, pl plan, want int) []dataspace.Tuple {
	out := make([]dataspace.Tuple, 0, min(want, len(pl.list)))
	var pos []int32
	var col []int64
	var secVal int64
	if pl.secondary >= 0 {
		if s.isCat[pl.secondary] {
			col = s.cols[pl.secondary]
			secVal = preds[pl.secondary].Value
		} else {
			pos = s.rankPos[pl.secondary]
		}
	}
	for _, r := range pl.list {
		if pos != nil {
			if p := pos[r]; p < pl.secFrom || p >= pl.secTo {
				continue
			}
		} else if col != nil && col[r] != secVal {
			continue
		}
		if s.coversAt(preds, r) {
			out = append(out, s.byRank[r])
			if len(out) == want {
				break
			}
		}
	}
	return out
}

// selectGallop intersects the two posting lists with a galloping merge:
// the shorter list (the primary) drives, and the cursor into the longer
// one advances by exponential search, skipping runs of non-matching ranks.
func (s *Store) selectGallop(preds []dataspace.Pred, pl plan, want int) []dataspace.Tuple {
	a, b := pl.list, pl.secList
	out := make([]dataspace.Tuple, 0, min(want, len(a)))
	j := 0
	for _, r := range a {
		j = gallop(b, j, r)
		if j == len(b) {
			break
		}
		if b[j] != r {
			continue
		}
		if s.coversAt(preds, r) {
			out = append(out, s.byRank[r])
			if len(out) == want {
				break
			}
		}
	}
	return out
}

// gallop returns the smallest index >= lo with b[idx] >= target, probing
// exponentially and finishing with a binary search over the final window.
func gallop(b []int32, lo int, target int32) int {
	n := len(b)
	if lo >= n || b[lo] >= target {
		return lo
	}
	step := 1
	hi := lo + 1
	for hi < n && b[hi] < target {
		lo = hi
		hi += step
		step <<= 1
	}
	if hi > n {
		hi = n
	}
	// Invariant: b[lo] < target and (hi == n or b[hi] >= target).
	for lo+1 < hi {
		mid := int(uint(lo+hi) >> 1)
		if b[mid] < target {
			lo = mid
		} else {
			hi = mid
		}
	}
	return hi
}

// selectRange enumerates the primary sorted-column segment, filters by the
// secondary predicate while the ranks are still in value order, then
// restores rank order with one allocation-free sort of a pooled buffer.
func (s *Store) selectRange(preds []dataspace.Pred, pl plan, want int) []dataspace.Tuple {
	seg := s.sortedRank[pl.primary][pl.from:pl.to]
	bufp := s.getScratch(len(seg))
	ranks := (*bufp)[:0]
	switch {
	case pl.secondary < 0:
		ranks = append(ranks, seg...)
	case s.isCat[pl.secondary]:
		col := s.cols[pl.secondary]
		v := preds[pl.secondary].Value
		for _, r := range seg {
			if col[r] == v {
				ranks = append(ranks, r)
			}
		}
	default:
		pos := s.rankPos[pl.secondary]
		for _, r := range seg {
			if p := pos[r]; p >= pl.secFrom && p < pl.secTo {
				ranks = append(ranks, r)
			}
		}
	}
	slices.Sort(ranks)
	out := make([]dataspace.Tuple, 0, min(want, len(ranks)))
	for _, r := range ranks {
		if s.coversAt(preds, r) {
			out = append(out, s.byRank[r])
			if len(out) == want {
				break
			}
		}
	}
	*bufp = ranks[:0]
	s.scratch.Put(bufp)
	return out
}

// SelectBatch answers every query of the batch with the same semantics as
// issuing B Select calls in order: result i is exactly Select(qs[i], limit).
// A single Store evaluates the batch sequentially; the Sharded store
// overrides this with a per-shard parallel fan-out. A cancelled ctx stops
// the evaluation between queries: the answered prefix is returned and the
// caller reads ctx.Err() — with a live ctx the result is always complete,
// so cancellation support can never change what a batch answers.
func (s *Store) SelectBatch(ctx context.Context, qs []dataspace.Query, limit int) [][]dataspace.Tuple {
	out := make([][]dataspace.Tuple, 0, len(qs))
	for _, q := range qs {
		if ctx.Err() != nil {
			return out
		}
		out = append(out, s.Select(q, limit))
	}
	return out
}

// Count returns the exact number of tuples matching q. Unlike Select it
// cannot early-exit, so the planner prefers any index path over the scan;
// result order is irrelevant, so no sorting or allocation happens on any
// path.
func (s *Store) Count(q dataspace.Query) int {
	n := len(s.byRank)
	preds := q.Preds()
	pl := s.choosePlan(preds, n)
	switch {
	case pl.bound == 0:
		return n
	case pl.primary < 0:
		c := 0
		for r := 0; r < n; r++ {
			if s.coversAt(preds, int32(r)) {
				c++
			}
		}
		return c
	case pl.bound == 1:
		// A single bound predicate: the path's candidate count is exact.
		return pl.m
	case s.isCat[pl.primary]:
		c := 0
		if pl.secondary >= 0 && s.isCat[pl.secondary] && useGallop(len(pl.secList), n) {
			b := pl.secList
			j := 0
			for _, r := range pl.list {
				j = gallop(b, j, r)
				if j == len(b) {
					break
				}
				if b[j] == r && s.coversAt(preds, r) {
					c++
				}
			}
			return c
		}
		var pos []int32
		var col []int64
		var secVal int64
		if pl.secondary >= 0 {
			if s.isCat[pl.secondary] {
				col = s.cols[pl.secondary]
				secVal = preds[pl.secondary].Value
			} else {
				pos = s.rankPos[pl.secondary]
			}
		}
		for _, r := range pl.list {
			if pos != nil {
				if p := pos[r]; p < pl.secFrom || p >= pl.secTo {
					continue
				}
			} else if col != nil && col[r] != secVal {
				continue
			}
			if s.coversAt(preds, r) {
				c++
			}
		}
		return c
	default:
		c := 0
		for _, r := range s.sortedRank[pl.primary][pl.from:pl.to] {
			if s.coversAt(preds, r) {
				c++
			}
		}
		return c
	}
}
