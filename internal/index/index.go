// Package index implements the query-evaluation engine behind the simulated
// hidden-database server: given a form query it returns the qualifying
// tuples in descending priority order, stopping as soon as it has one more
// than the server's return limit k.
//
// Two access paths are maintained and chosen between per query, the way a
// (very small) relational engine would:
//
//   - a priority-ordered heap file scan, cheap when the query is broad
//     (overflowing queries terminate after k+1 matches);
//   - per-attribute secondary indexes — posting lists for categorical
//     equality predicates and value-sorted columns for numeric ranges —
//     cheap when some predicate is selective.
//
// The planner estimates the candidate count of every usable predicate
// exactly (posting-list length / binary-searched range width) and picks the
// cheapest path.
package index

import (
	"fmt"
	"sort"

	"hidb/internal/dataspace"
)

// numEntry is one cell of a value-sorted numeric column.
type numEntry struct {
	value int64
	rank  int32 // position in priority order (0 = highest priority)
}

// Store holds one relation, its priority order, and its secondary indexes.
// A Store is immutable after New and safe for concurrent readers.
type Store struct {
	schema *dataspace.Schema
	// byRank lists the tuples in descending priority order: byRank[0] is
	// the tuple the server prefers to return first.
	byRank []dataspace.Tuple
	// post[i] maps a categorical value to the ranks holding it, ascending.
	post []map[int64][]int32
	// sorted[i] is numeric column i sorted by (value, rank).
	sorted [][]numEntry
}

// New builds a Store over tuples already arranged in descending priority
// order. The tuples must all validate against the schema.
func New(schema *dataspace.Schema, byRank []dataspace.Tuple) (*Store, error) {
	if schema == nil {
		return nil, fmt.Errorf("index: nil schema")
	}
	d := schema.Dims()
	for r, t := range byRank {
		if err := t.Validate(schema); err != nil {
			return nil, fmt.Errorf("index: tuple at rank %d: %w", r, err)
		}
	}
	s := &Store{
		schema: schema,
		byRank: byRank,
		post:   make([]map[int64][]int32, d),
		sorted: make([][]numEntry, d),
	}
	for i := 0; i < d; i++ {
		if schema.Attr(i).Kind == dataspace.Categorical {
			m := make(map[int64][]int32)
			for r, t := range byRank {
				m[t[i]] = append(m[t[i]], int32(r))
			}
			s.post[i] = m
		} else {
			col := make([]numEntry, len(byRank))
			for r, t := range byRank {
				col[r] = numEntry{value: t[i], rank: int32(r)}
			}
			sort.Slice(col, func(a, b int) bool {
				if col[a].value != col[b].value {
					return col[a].value < col[b].value
				}
				return col[a].rank < col[b].rank
			})
			s.sorted[i] = col
		}
	}
	return s, nil
}

// Size returns the number of tuples in the store.
func (s *Store) Size() int { return len(s.byRank) }

// Schema returns the store's schema.
func (s *Store) Schema() *dataspace.Schema { return s.schema }

// All returns the tuples in priority order. The slice and its tuples are
// shared; callers must not mutate them.
func (s *Store) All() []dataspace.Tuple { return s.byRank }

// rangeBounds returns the half-open index range of sorted column col whose
// values lie in [lo, hi].
func rangeBounds(col []numEntry, lo, hi int64) (from, to int) {
	from = sort.Search(len(col), func(i int) bool { return col[i].value >= lo })
	to = sort.Search(len(col), func(i int) bool { return col[i].value > hi })
	return from, to
}

// plan describes the access path chosen for a query.
type plan struct {
	attr int // -1 means priority scan
	// candidate bounds for a numeric range plan
	from, to int
	// candidate list for a categorical plan
	list []int32
}

// choosePlan picks the cheapest access path for q.
func (s *Store) choosePlan(q dataspace.Query) plan {
	n := len(s.byRank)
	best := plan{attr: -1}
	bestCost := n // cost of the fallback scan, in tuples touched
	for i := 0; i < s.schema.Dims(); i++ {
		p := q.Pred(i)
		if s.schema.Attr(i).Kind == dataspace.Categorical {
			if p.Wild {
				continue
			}
			list := s.post[i][p.Value]
			if len(list) < bestCost {
				bestCost = len(list)
				best = plan{attr: i, list: list}
			}
		} else {
			if p.Lo == dataspace.NegInf && p.Hi == dataspace.PosInf {
				continue
			}
			from, to := rangeBounds(s.sorted[i], p.Lo, p.Hi)
			if to-from < bestCost {
				bestCost = to - from
				best = plan{attr: i, from: from, to: to}
			}
		}
	}
	// A selective index path must beat the scan by a margin: the scan
	// early-exits after limit+1 matches, while the index path pays a sort.
	if best.attr >= 0 && bestCost > n/4 {
		return plan{attr: -1}
	}
	return best
}

// Select returns up to limit+1 tuples matching q, in descending priority
// order. Returning limit+1 tuples signals the caller that the true result
// exceeds limit (the server's overflow condition). The returned slice shares
// tuple storage with the store.
func (s *Store) Select(q dataspace.Query, limit int) []dataspace.Tuple {
	if limit < 0 {
		limit = 0
	}
	want := limit + 1
	pl := s.choosePlan(q)
	if pl.attr < 0 {
		return s.scan(q, want)
	}
	var ranks []int32
	if pl.list != nil {
		ranks = pl.list // already ascending by rank
	} else {
		col := s.sorted[pl.attr]
		ranks = make([]int32, 0, pl.to-pl.from)
		for i := pl.from; i < pl.to; i++ {
			ranks = append(ranks, col[i].rank)
		}
		sort.Slice(ranks, func(a, b int) bool { return ranks[a] < ranks[b] })
	}
	out := make([]dataspace.Tuple, 0, min(want, len(ranks)))
	for _, r := range ranks {
		t := s.byRank[r]
		if q.Covers(t) {
			out = append(out, t)
			if len(out) == want {
				break
			}
		}
	}
	return out
}

// Count returns the exact number of tuples matching q. Used by tests and
// the statistics endpoints, not by the serving path.
func (s *Store) Count(q dataspace.Query) int {
	c := 0
	for _, t := range s.byRank {
		if q.Covers(t) {
			c++
		}
	}
	return c
}

// scan is the priority-ordered fallback path.
func (s *Store) scan(q dataspace.Query, want int) []dataspace.Tuple {
	out := make([]dataspace.Tuple, 0, min(want, 64))
	for _, t := range s.byRank {
		if q.Covers(t) {
			out = append(out, t)
			if len(out) == want {
				break
			}
		}
	}
	return out
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
