// Package index implements the query-evaluation engine behind the simulated
// hidden-database server: given a form query it returns the qualifying
// tuples in descending priority order, stopping as soon as it has one more
// than the server's return limit k.
//
// # Columnar layout
//
// Tuples are stored twice: once as the row slice the server hands back to
// callers (byRank, in descending priority order), and once as
// struct-of-arrays columns — one contiguous []int64 per attribute, indexed
// by rank. All predicate evaluation happens on the columns: checking
// whether the tuple at some rank satisfies a predicate is a single load
// from a dense array, with no per-tuple pointer chase and no per-attribute
// schema lookup (the attribute kinds are flattened into a []bool once at
// build time).
//
// # Access paths (planner v2)
//
// Five access paths are maintained and chosen between per query, the way a
// (very small) relational engine would:
//
//   - a priority-ordered columnar scan that evaluates predicates over
//     8-rank column chunks (a per-chunk survivor bitmask per predicate,
//     ANDed across predicates with early break), so the scan reads each
//     column sequentially instead of tuple-at-a-time; overflowing queries
//     terminate after k+1 matches;
//   - per-attribute secondary indexes — rank-ascending posting lists for
//     categorical equality predicates and value-sorted columns for numeric
//     ranges — cheap when one predicate is selective;
//   - the intersection of the two most selective predicates: posting ∩
//     posting via a galloping (exponential-search) merge of the two
//     rank-ascending lists, and posting ∩ range (or range ∩ range/equality)
//     via a precomputed rank→sorted-position permutation that answers "is
//     this rank inside the value range?" with one load and two compares;
//   - roaring-style bitmap intersection (bitmap.go): low-cardinality
//     categorical attributes (domain ≤ bitmapMaxDomain, store ≥
//     bitmapMinTuples) mirror each value's posting list as array / bitmap /
//     run containers over rank space, so a 2-, 3- or k-way equality
//     intersection is a word-parallel AND — 64 ranks per operation — that
//     enumerates in exactly the rank order Select must return.
//
// Every path returns the same tuples in the same order; the planner's
// choice affects time only, never results.
//
// # Cost model
//
// Costs are measured, not assumed. Each Store samples its relation at
// construction (stats.go): the scan's expected cost is want/jointSel — how
// deep the early-exiting scan must go before it has collected limit+1
// matches, with jointSel the full conjunction's selectivity evaluated on
// the sample — clamped to n. Index-path costs come from exact candidate
// counts (posting-list length, binary-searched range width) with small
// constant factors for the per-candidate work (probe ≈ 2×, sort-restoring
// range enumeration ≈ 3×), and the bitmap path costs its word-AND sweep
// (n/64 words per attribute) plus ~1.5× the expected intersection size.
// The cheapest path wins. Count keeps the v1 planner (choosePlan, full n as
// the scan cost, since counting cannot early-exit) plus a popcount fast
// path when every bound predicate is bitmap-indexed.
//
// # Plan cache
//
// The chosen path is memoized per query shape — the per-attribute predicate
// kinds, not the values — in a lock-free copy-on-write cache (plancache.go),
// so the steady state of every crawl algorithm (thousands of queries in a
// handful of shapes) skips planning entirely. A cached plan fixes only the
// structural decision (path kind and driving attributes); posting lists,
// range bounds and bitmaps are re-fetched from the query's actual values at
// execution time, which is what makes a shape-cached plan correct for every
// query of its shape. Store.PlanStats exposes the cache's hit counters and
// per-path execution counts.
//
// # Allocation discipline
//
// Select performs one allocation per call — the result slice, sized
// exactly min(limit+1, candidates) — regardless of access path. The
// numeric-range and bitmap paths need intermediate rank buffers; they
// filter into sync.Pool-recycled scratch (ranks and bitmap words) and sort
// with the allocation-free slices.Sort. Count allocates nothing. The
// scratch pools are per-Store, so the shards of a Sharded store never
// contend on a shared pool.
package index

import (
	"context"
	"fmt"
	"math/bits"
	"slices"
	"sort"
	"sync"

	"hidb/internal/dataspace"
)

// Store holds one relation, its priority order, and its secondary indexes.
// A Store is immutable after New and safe for concurrent readers.
type Store struct {
	schema *dataspace.Schema
	// n is the relation size. For a row-backed store it equals
	// len(byRank); an artifact-backed store (NewFromArtifacts) has no
	// byRank, so the size is carried explicitly.
	n int
	// byRank lists the tuples in descending priority order: byRank[0] is
	// the tuple the server prefers to return first. nil for
	// artifact-backed stores, which materialize rows through row instead.
	byRank []dataspace.Tuple
	// row materializes the tuple at a rank when byRank is nil — the hook
	// an artifact-backed store (e.g. a disk store serving rows from
	// mmap'd pages through a block cache) plugs its lazy row source into.
	row func(r int32) dataspace.Tuple
	// isCat flattens the schema's attribute kinds for branch-friendly
	// predicate checks.
	isCat []bool
	// cols is the columnar mirror of byRank: cols[i][r] == byRank[r][i].
	cols [][]int64
	// post[i] maps a categorical value to the ranks holding it, ascending.
	post []map[int64][]int32
	// bitmaps[i] mirrors post[i] as roaring-style rank bitmaps for
	// low-cardinality categorical attributes; nil when the attribute does
	// not qualify (numeric, wide domain, or store too small to pay off).
	bitmaps []*bitmapIndex
	// sortedVal[i] is numeric column i's values sorted ascending (ties in
	// rank order); sortedRank[i] carries the rank of each sorted cell.
	sortedVal  [][]int64
	sortedRank [][]int32
	// rankPos[i][r] is the position of rank r inside sortedVal[i] — the
	// rank→sorted-position permutation the intersection paths use to test
	// range membership in O(1).
	rankPos [][]int32
	// stats is the sampled selectivity statistics driving the cost model.
	// Shards of a Sharded store share one instance.
	stats *SelStats
	// pc is the per-shape plan cache plus the planner counters.
	pc *planCache
	// scratch recycles the rank buffers of the numeric-range and bitmap
	// paths. It is per-Store (not package-global) so that independent
	// shards of a Sharded store never contend on one pool.
	scratch sync.Pool
	// words recycles the bitmapWords-long word buffers of the bitmap path.
	words sync.Pool
}

// bitmapMaxDomain is the categorical domain size up to which an attribute
// gets a bitmap index: beyond it, per-value bitmaps are too sparse to beat
// the posting list. A variable so tests can widen it.
var bitmapMaxDomain = 64

// bitmapMinTuples is the store size below which bitmap indexes are not
// built: on a store this small every column is cache-resident and the
// posting paths win outright. A variable so tests can drive the bitmap
// paths on test-sized stores.
var bitmapMinTuples = 4096

// New builds a Store over tuples already arranged in descending priority
// order. The tuples must all validate against the schema.
func New(schema *dataspace.Schema, byRank []dataspace.Tuple) (*Store, error) {
	if schema == nil {
		return nil, fmt.Errorf("index: nil schema")
	}
	return newWithStats(schema, byRank, nil)
}

// newWithStats builds a Store, reusing the given selectivity statistics
// when non-nil (the Sharded constructor samples the full relation once and
// shares the result across shards; selectivity is a property of the data
// shape, not of any one priority band).
func newWithStats(schema *dataspace.Schema, byRank []dataspace.Tuple, stats *SelStats) (*Store, error) {
	d := schema.Dims()
	for r, t := range byRank {
		if err := t.Validate(schema); err != nil {
			return nil, fmt.Errorf("index: tuple at rank %d: %w", r, err)
		}
	}
	n := len(byRank)
	s := &Store{
		schema:     schema,
		n:          n,
		byRank:     byRank,
		scratch:    sync.Pool{New: func() any { return new([]int32) }},
		words:      sync.Pool{New: func() any { p := make([]uint64, bitmapWords); return &p }},
		isCat:      make([]bool, d),
		cols:       make([][]int64, d),
		post:       make([]map[int64][]int32, d),
		bitmaps:    make([]*bitmapIndex, d),
		sortedVal:  make([][]int64, d),
		sortedRank: make([][]int32, d),
		rankPos:    make([][]int32, d),
		stats:      stats,
		pc:         newPlanCache(),
	}
	for i := 0; i < d; i++ {
		col := make([]int64, n)
		for r, t := range byRank {
			col[r] = t[i]
		}
		s.cols[i] = col
		attr := schema.Attr(i)
		if attr.Kind == dataspace.Categorical {
			s.isCat[i] = true
			m := make(map[int64][]int32)
			for r, v := range col {
				m[v] = append(m[v], int32(r))
			}
			s.post[i] = m
			if n >= bitmapMinTuples && attr.DomainSize <= bitmapMaxDomain {
				bi := &bitmapIndex{m: make(map[int64]*rankBitmap, len(m))}
				for v, list := range m {
					bi.m[v] = buildRankBitmap(list)
				}
				s.bitmaps[i] = bi
			}
		} else {
			perm := make([]int32, n)
			for r := range perm {
				perm[r] = int32(r)
			}
			sort.Slice(perm, func(a, b int) bool {
				va, vb := col[perm[a]], col[perm[b]]
				if va != vb {
					return va < vb
				}
				return perm[a] < perm[b]
			})
			vals := make([]int64, n)
			pos := make([]int32, n)
			for p, r := range perm {
				vals[p] = col[r]
				pos[r] = int32(p)
			}
			s.sortedVal[i] = vals
			s.sortedRank[i] = perm
			s.rankPos[i] = pos
		}
	}
	if s.stats == nil {
		s.stats = buildSelStats(schema, byRank)
	}
	return s, nil
}

// Artifacts is the set of prebuilt index structures an artifact-backed
// Store is assembled from: the columnar mirror, the secondary indexes, the
// shared selectivity sample, and a lazy row source. A disk store builds
// these once at write time and hands Open'd slices (often aliasing mmap'd
// file pages) straight to NewFromArtifacts, so the full planner and every
// access path run unchanged against storage the Store does not own.
//
// Invariants the caller must uphold (they mirror what newWithStats builds):
// Cols[i][r] is attribute i of the rank-r tuple; Post[i] maps each
// categorical value to its ranks ascending; SortedVal[i]/SortedRank[i] list
// numeric column i's values ascending (ties in rank order) with the rank of
// each sorted cell; RankPos[i][r] is rank r's position in SortedVal[i]. All
// slices are read-only after construction.
type Artifacts struct {
	// N is the relation size (every per-attribute slice has length N).
	N int
	// Cols is the columnar relation, one []int64 per attribute.
	Cols [][]int64
	// Post holds the posting-list index of each categorical attribute
	// (nil entries for numeric attributes).
	Post []map[int64][]int32
	// SortedVal, SortedRank and RankPos hold the sorted-segment index of
	// each numeric attribute (nil entries for categorical attributes).
	SortedVal  [][]int64
	SortedRank [][]int32
	RankPos    [][]int32
	// Stats is the sampled selectivity statistics; shards of one
	// partitioned store share a single instance so their plans agree
	// with the in-memory engine's.
	Stats *SelStats
	// Row materializes the tuple at a rank. Only result emission calls
	// it — planning and filtering read Cols — so a caller can serve it
	// from a cache of disk pages.
	Row func(r int32) dataspace.Tuple
}

// NewFromArtifacts builds a Store over prebuilt index structures instead of
// a materialized row slice. Bitmap indexes are derived from the posting
// lists under the same gates newWithStats applies (store size, domain
// width), so an artifact-backed store makes bit-identical plan choices to
// the in-memory store it mirrors. The artifacts are trusted (they were
// validated when built); only structural consistency is checked here.
func NewFromArtifacts(schema *dataspace.Schema, a Artifacts) (*Store, error) {
	if schema == nil {
		return nil, fmt.Errorf("index: nil schema")
	}
	d := schema.Dims()
	if len(a.Cols) != d || len(a.Post) != d || len(a.SortedVal) != d ||
		len(a.SortedRank) != d || len(a.RankPos) != d {
		return nil, fmt.Errorf("index: artifacts cover %d attributes, schema has %d", len(a.Cols), d)
	}
	if a.Stats == nil {
		return nil, fmt.Errorf("index: artifacts carry no selectivity statistics")
	}
	if a.N > 0 && a.Row == nil {
		return nil, fmt.Errorf("index: artifacts carry no row source")
	}
	s := &Store{
		schema:     schema,
		n:          a.N,
		row:        a.Row,
		scratch:    sync.Pool{New: func() any { return new([]int32) }},
		words:      sync.Pool{New: func() any { p := make([]uint64, bitmapWords); return &p }},
		isCat:      make([]bool, d),
		cols:       a.Cols,
		post:       a.Post,
		bitmaps:    make([]*bitmapIndex, d),
		sortedVal:  a.SortedVal,
		sortedRank: a.SortedRank,
		rankPos:    a.RankPos,
		stats:      a.Stats,
		pc:         newPlanCache(),
	}
	for i := 0; i < d; i++ {
		attr := schema.Attr(i)
		if len(a.Cols[i]) != a.N {
			return nil, fmt.Errorf("index: attribute %d column holds %d values, want %d", i, len(a.Cols[i]), a.N)
		}
		if attr.Kind == dataspace.Categorical {
			s.isCat[i] = true
			if a.Post[i] == nil {
				return nil, fmt.Errorf("index: categorical attribute %d has no posting index", i)
			}
			if a.N >= bitmapMinTuples && attr.DomainSize <= bitmapMaxDomain {
				bi := &bitmapIndex{m: make(map[int64]*rankBitmap, len(a.Post[i]))}
				for v, list := range a.Post[i] {
					bi.m[v] = buildRankBitmap(list)
				}
				s.bitmaps[i] = bi
			}
		} else {
			if len(a.SortedVal[i]) != a.N || len(a.SortedRank[i]) != a.N || len(a.RankPos[i]) != a.N {
				return nil, fmt.Errorf("index: numeric attribute %d sorted segment is inconsistent with n=%d", i, a.N)
			}
		}
	}
	return s, nil
}

// tupleAt materializes the tuple at rank r: a direct row-slice load for the
// in-memory store, the lazy row source for artifact-backed ones.
func (s *Store) tupleAt(r int32) dataspace.Tuple {
	if s.byRank != nil {
		return s.byRank[r]
	}
	return s.row(r)
}

// Size returns the number of tuples in the store.
func (s *Store) Size() int { return s.n }

// Schema returns the store's schema.
func (s *Store) Schema() *dataspace.Schema { return s.schema }

// All returns the tuples in priority order. For a row-backed store the
// slice and its tuples are shared and must not be mutated; an
// artifact-backed store materializes every row — callers that only need a
// subset should Select instead.
func (s *Store) All() []dataspace.Tuple {
	if s.byRank != nil || s.n == 0 {
		return s.byRank
	}
	out := make([]dataspace.Tuple, s.n)
	for r := range out {
		out[r] = s.row(int32(r))
	}
	return out
}

// EngineStats identifies the in-memory engine. Artifact-backed engines
// report their own kind and cache counters.
func (s *Store) EngineStats() EngineStats { return EngineStats{Kind: "mem"} }

// Stats returns the store's sampled selectivity statistics.
func (s *Store) Stats() *SelStats { return s.stats }

// PlanStats returns the planner's cumulative counters: cached shapes, plan
// cache hits and misses, and per-access-path Select execution counts.
func (s *Store) PlanStats() PlanStats { return s.pc.stats() }

// coversAt reports whether the tuple at rank r satisfies every predicate,
// reading the columns directly.
func (s *Store) coversAt(preds []dataspace.Pred, r int32) bool {
	for i := range preds {
		p := &preds[i]
		v := s.cols[i][r]
		if s.isCat[i] {
			if !p.Wild && v != p.Value {
				return false
			}
		} else if v < p.Lo || v > p.Hi {
			return false
		}
	}
	return true
}

// coversAtSkip is coversAt with the attributes in the skip bitmask assumed
// satisfied — the bitmap path's residual check, which never re-tests the
// equality predicates the bitmap intersection already enforced.
func (s *Store) coversAtSkip(preds []dataspace.Pred, r int32, skip uint64) bool {
	for i := range preds {
		if skip>>uint(i)&1 != 0 {
			continue
		}
		p := &preds[i]
		v := s.cols[i][r]
		if s.isCat[i] {
			if !p.Wild && v != p.Value {
				return false
			}
		} else if v < p.Lo || v > p.Hi {
			return false
		}
	}
	return true
}

// lowerBound returns the first index with vals[i] >= x.
func lowerBound(vals []int64, x int64) int {
	lo, hi := 0, len(vals)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if vals[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// rangeBounds returns the half-open segment of the sorted column whose
// values lie in [lo, hi]. An inverted range (lo > hi, constructible via
// Query.WithRange, which never validates) clamps to an empty segment so
// the planner sees zero candidates instead of a negative count.
func rangeBounds(vals []int64, lo, hi int64) (from, to int) {
	from = lowerBound(vals, lo)
	to = lowerBound(vals, hi+1)
	if to < from {
		to = from
	}
	return from, to
}

// plan describes the value-specific execution of one query: a primary
// candidate enumerator plus an optional secondary intersection filter. It
// is rebuilt per query (buildPlan) from the shape-cached structural
// decision, or computed from scratch by choosePlan (the v1 planner, still
// the exact-cost engine behind Count).
type plan struct {
	// primary is the attribute of the primary access path; -1 means the
	// priority-ordered columnar scan.
	primary int
	// m is the primary path's exact candidate count.
	m int
	// list is the primary posting list (categorical primary).
	list []int32
	// from, to bound the primary sorted-column segment (numeric primary).
	from, to int
	// secondary is the attribute of the second-tightest path; -1 = none.
	secondary int
	// secList is the secondary posting list (categorical secondary under a
	// categorical primary — the galloping-merge case).
	secList []int32
	// secFrom, secTo bound the secondary rank→sorted-position window
	// (numeric secondary).
	secFrom, secTo int32
	// bound counts the predicates that constrain the query at all.
	bound int
}

// choosePlan picks the cheapest access path for the predicates from exact
// candidate counts. maxCost is the candidate count above which the scan
// wins (n for Count, whose scan cannot early-exit). Select no longer calls
// this — planPath replaces the fixed margin with the sampled cost model —
// but Count and the forced-path tests still do.
func (s *Store) choosePlan(preds []dataspace.Pred, maxCost int) plan {
	pl := plan{primary: -1, secondary: -1}
	best1, best2 := -1, -1
	var m1, m2 int
	var list1, list2 []int32
	var from1, to1, from2, to2 int
	for i := range preds {
		p := &preds[i]
		var m, from, to int
		var list []int32
		if s.isCat[i] {
			if p.Wild {
				continue
			}
			list = s.post[i][p.Value]
			m = len(list)
		} else {
			if p.Lo == dataspace.NegInf && p.Hi == dataspace.PosInf {
				continue
			}
			from, to = rangeBounds(s.sortedVal[i], p.Lo, p.Hi)
			m = to - from
		}
		pl.bound++
		switch {
		case best1 < 0 || m < m1:
			best2, m2, list2, from2, to2 = best1, m1, list1, from1, to1
			best1, m1, list1, from1, to1 = i, m, list, from, to
		case best2 < 0 || m < m2:
			best2, m2, list2, from2, to2 = i, m, list, from, to
		}
	}
	if best1 < 0 || m1 > maxCost {
		return plan{primary: -1, secondary: -1, bound: pl.bound}
	}
	pl.primary, pl.m = best1, m1
	pl.list, pl.from, pl.to = list1, from1, to1
	if best2 >= 0 {
		pl.secondary = best2
		if s.isCat[best2] {
			pl.secList = list2
		} else {
			pl.secFrom, pl.secTo = int32(from2), int32(to2)
		}
	}
	return pl
}

// getScratch returns a pooled rank buffer with at least the given capacity,
// so a steady query stream allocates nothing beyond its result slices.
func (s *Store) getScratch(capacity int) *[]int32 {
	p := s.scratch.Get().(*[]int32)
	if cap(*p) < capacity {
		*p = make([]int32, 0, capacity)
	}
	return p
}

// Select returns up to limit+1 tuples matching q, in descending priority
// order. Returning limit+1 tuples signals the caller that the true result
// exceeds limit (the server's overflow condition). The returned slice shares
// tuple storage with the store.
func (s *Store) Select(q dataspace.Query, limit int) []dataspace.Tuple {
	if limit < 0 {
		limit = 0
	}
	want := limit + 1
	preds := q.Preds()
	key, ok := shapeKey(s.isCat, preds)
	var cp *cachedPlan
	if ok {
		cp = s.pc.get(key)
	} else {
		s.pc.misses.Add(1)
	}
	if cp == nil {
		cp = s.planPath(preds, want)
		if ok {
			s.pc.put(key, cp)
		}
	}
	return s.execSelect(cp, preds, want)
}

// planPath chooses the access path for a query whose shape has no cached
// plan yet, using the sampled cost model (see the package comment). The
// returned plan carries only the structural decision; execSelect re-derives
// the value-specific artifacts per query.
func (s *Store) planPath(preds []dataspace.Pred, want int) *cachedPlan {
	n := s.n
	best1, best2 := -1, -1
	var m1, m2 int
	var bmAttrs []int8
	var bmSkip uint64
	bmSel := 1.0
	bound := 0
	useBitmaps := len(preds) <= shapeMaxDims
	for i := range preds {
		p := &preds[i]
		var m int
		if s.isCat[i] {
			if p.Wild {
				continue
			}
			m = len(s.post[i][p.Value])
			if useBitmaps && s.bitmaps[i] != nil {
				bmAttrs = append(bmAttrs, int8(i))
				bmSkip |= 1 << uint(i)
				bmSel *= float64(m) / float64(n)
			}
		} else {
			if p.Lo == dataspace.NegInf && p.Hi == dataspace.PosInf {
				continue
			}
			from, to := rangeBounds(s.sortedVal[i], p.Lo, p.Hi)
			m = to - from
		}
		bound++
		switch {
		case best1 < 0 || m < m1:
			best2, m2 = best1, m1
			best1, m1 = i, m
		case best2 < 0 || m < m2:
			best2, m2 = i, m
		}
	}
	_ = m2
	// Expected ranks the chunked scan reads before collecting want matches.
	scanCost := float64(n)
	if c := float64(want) / s.stats.jointSel(preds); c < scanCost {
		scanCost = c
	}
	cp := &cachedPlan{path: pathScan, primary: -1, secondary: -1}
	bestCost := scanCost
	if best1 >= 0 {
		var idxCost float64
		var path pathKind
		if s.isCat[best1] {
			// Posting walk: one secondary probe + residual check per candidate.
			idxCost = 2 * float64(m1)
			path = pathPosting
		} else {
			// Range enumeration pays an extra rank re-sort.
			idxCost = 3 * float64(m1)
			path = pathRange
		}
		if idxCost < bestCost {
			bestCost = idxCost
			cp = &cachedPlan{path: path, primary: int8(best1), secondary: int8(best2)}
		}
	}
	if len(bmAttrs) >= 2 {
		// Word-parallel AND over every block plus the emission of the
		// expected intersection (independence estimate from exact
		// per-value frequencies).
		bmCost := float64(n)/64*float64(len(bmAttrs)) + 1.5*float64(n)*bmSel
		if bmCost < bestCost {
			exact := bound == len(bmAttrs)
			cp = &cachedPlan{path: pathBitmap, primary: -1, secondary: -1,
				bitmapAttrs: bmAttrs, bitmapSkip: bmSkip, exact: exact}
		}
	}
	return cp
}

// execSelect runs a structural plan against the query's actual values. The
// posting/gallop/range family rebuilds its value-specific plan (which
// posting list, which range bounds, which of the two attributes is tighter)
// per query, so a shape-cached decision stays correct for every query of
// the shape.
func (s *Store) execSelect(cp *cachedPlan, preds []dataspace.Pred, want int) []dataspace.Tuple {
	switch cp.path {
	case pathScan:
		s.pc.note(pathScan)
		return s.selectScan(preds, want)
	case pathBitmap:
		s.pc.note(pathBitmap)
		return s.selectBitmap(cp, preds, want)
	default:
		pl := s.buildPlan(cp, preds)
		if s.isCat[pl.primary] {
			if pl.secondary >= 0 && s.isCat[pl.secondary] && useGallop(len(pl.secList), s.n) {
				s.pc.note(pathGallop)
				return s.selectGallop(preds, pl, want)
			}
			s.pc.note(pathPosting)
			return s.selectPosting(preds, pl, want)
		}
		s.pc.note(pathRange)
		return s.selectRange(preds, pl, want)
	}
}

// buildPlan materializes the value-specific plan for the cached structural
// decision: it fetches the posting lists / range bounds of the two chosen
// attributes for this query's values and lets the tighter one drive (the
// cached primary was tightest for the query that planned the shape, not
// necessarily for this one).
func (s *Store) buildPlan(cp *cachedPlan, preds []dataspace.Pred) plan {
	a := int(cp.primary)
	var mA, fromA, toA int
	var listA []int32
	if s.isCat[a] {
		listA = s.post[a][preds[a].Value]
		mA = len(listA)
	} else {
		fromA, toA = rangeBounds(s.sortedVal[a], preds[a].Lo, preds[a].Hi)
		mA = toA - fromA
	}
	b := int(cp.secondary)
	if b < 0 {
		return plan{primary: a, m: mA, list: listA, from: fromA, to: toA, secondary: -1}
	}
	var mB, fromB, toB int
	var listB []int32
	if s.isCat[b] {
		listB = s.post[b][preds[b].Value]
		mB = len(listB)
	} else {
		fromB, toB = rangeBounds(s.sortedVal[b], preds[b].Lo, preds[b].Hi)
		mB = toB - fromB
	}
	if mB < mA {
		a, b = b, a
		mA, fromA, toA, listA, mB, fromB, toB, listB = mB, fromB, toB, listB, mA, fromA, toA, listA
	}
	pl := plan{primary: a, m: mA, list: listA, from: fromA, to: toA, secondary: b}
	if s.isCat[b] {
		pl.secList = listB
	} else {
		pl.secFrom, pl.secTo = int32(fromB), int32(toB)
	}
	return pl
}

// scanChunk is the rank-block width of the chunked scan: 8 ranks per mask
// keeps the per-predicate inner loop unrollable while a chunk of every
// column still fits comfortably in L1.
const scanChunk = 8

// selectScan is the priority-ordered columnar scan, evaluated in
// scanChunk-wide column chunks: each bound predicate computes a survivor
// bitmask over the chunk from one sequential column read, the masks AND
// together (with an early break when a chunk dies), and only survivors are
// emitted — in rank order, since bit i of the mask is rank base+i.
func (s *Store) selectScan(preds []dataspace.Pred, want int) []dataspace.Tuple {
	n := s.n
	out := make([]dataspace.Tuple, 0, min(want, n))
	base := 0
	for ; base+scanChunk <= n; base += scanChunk {
		mask := s.chunkMask(preds, base)
		for mask != 0 {
			b := bits.TrailingZeros32(mask)
			mask &= mask - 1
			out = append(out, s.tupleAt(int32(base+b)))
			if len(out) == want {
				return out
			}
		}
	}
	for r := base; r < n; r++ {
		if s.coversAt(preds, int32(r)) {
			out = append(out, s.tupleAt(int32(r)))
			if len(out) == want {
				break
			}
		}
	}
	return out
}

// chunkMask evaluates every bound predicate over the scanChunk ranks at
// base, returning the bitmask of ranks satisfying all of them.
func (s *Store) chunkMask(preds []dataspace.Pred, base int) uint32 {
	mask := uint32(1<<scanChunk - 1)
	for i := range preds {
		p := &preds[i]
		var m uint32
		if s.isCat[i] {
			if p.Wild {
				continue
			}
			col := s.cols[i][base : base+scanChunk : base+scanChunk]
			v := p.Value
			for j := 0; j < scanChunk; j++ {
				if col[j] == v {
					m |= 1 << uint(j)
				}
			}
		} else {
			if p.Lo == dataspace.NegInf && p.Hi == dataspace.PosInf {
				continue
			}
			col := s.cols[i][base : base+scanChunk : base+scanChunk]
			lo, hi := p.Lo, p.Hi
			for j := 0; j < scanChunk; j++ {
				if v := col[j]; v >= lo && v <= hi {
					m |= 1 << uint(j)
				}
			}
		}
		mask &= m
		if mask == 0 {
			break
		}
	}
	return mask
}

// selectBitmap intersects the rank bitmaps of the plan's equality
// predicates into a pooled rank buffer (ascending — already priority
// order) and applies the residual predicates, if any, per surviving rank.
// A plan whose bitmaps cover every bound predicate (cp.exact) needs no
// residual pass and lets the intersection stop at want ranks.
func (s *Store) selectBitmap(cp *cachedPlan, preds []dataspace.Pred, want int) []dataspace.Tuple {
	var bmArr [shapeMaxDims]*rankBitmap
	bms := bmArr[:0]
	for _, a := range cp.bitmapAttrs {
		bm := s.bitmaps[a].get(preds[a].Value)
		if bm == nil {
			// The value occurs nowhere: the intersection is empty.
			return []dataspace.Tuple{}
		}
		bms = append(bms, bm)
	}
	// Let the sparsest bitmap drive the block walk.
	for i := 1; i < len(bms); i++ {
		for j := i; j > 0 && bms[j].card < bms[j-1].card; j-- {
			bms[j], bms[j-1] = bms[j-1], bms[j]
		}
	}
	maxRanks := -1
	if cp.exact {
		maxRanks = want
	}
	wordsp := s.words.Get().(*[]uint64)
	bufp := s.getScratch(1 << 10)
	ranks := intersectInto(bms, *wordsp, (*bufp)[:0], maxRanks)
	out := make([]dataspace.Tuple, 0, min(want, len(ranks)))
	if cp.exact {
		for _, r := range ranks {
			out = append(out, s.tupleAt(r))
		}
	} else {
		for _, r := range ranks {
			if s.coversAtSkip(preds, r, cp.bitmapSkip) {
				out = append(out, s.tupleAt(r))
				if len(out) == want {
					break
				}
			}
		}
	}
	*bufp = ranks[:0]
	s.scratch.Put(bufp)
	s.words.Put(wordsp)
	return out
}

// useGallop decides how a posting ∩ posting intersection tests membership
// of each driving-list rank in the secondary list: a galloping cursor over
// the secondary list versus one load from the secondary attribute's column.
// The driving (shorter) list is walked in full either way, so this is a
// per-candidate cost question. Measured on the paper's workloads (n ≈ 50k,
// every column L2-resident) the single predictable column load beats the
// ~log2(m2) branchy probes of galloping decisively — Figure 11a runs ~30%
// faster on column probes. Galloping pays off only when the column itself
// falls out of cache (multi-million-row stores) while the secondary list
// stays small enough to remain resident.
//
// The intersection filter is intentionally open-coded in selectPosting,
// selectGallop and Count's categorical branch rather than shared through a
// per-rank callback: the loops capture their accumulators (the result
// slice / the counter), so a closure-based iterator would escape them to
// the heap and break the one-allocation Select contract the benchmarks
// pin. TestGallopPathsMatchColumnProbe keeps the copies equivalent.
func useGallop(m2, n int) bool {
	return m2 <= 2048 && n >= colCacheTuples
}

// colCacheTuples is the store size (8-byte column cells, ~32 MiB — a
// typical LLC) beyond which columns stop being cache-resident. It is a
// variable only so tests can lower it to drive the galloping paths on
// test-sized stores.
var colCacheTuples = 4 << 20

// selectPosting walks the primary posting list (already rank-ascending),
// rejecting candidates with the cheapest test for the secondary predicate —
// a rank→sorted-position window check (numeric) or a single column load
// (categorical) — before the full predicate check.
func (s *Store) selectPosting(preds []dataspace.Pred, pl plan, want int) []dataspace.Tuple {
	out := make([]dataspace.Tuple, 0, min(want, len(pl.list)))
	var pos []int32
	var col []int64
	var secVal int64
	if pl.secondary >= 0 {
		if s.isCat[pl.secondary] {
			col = s.cols[pl.secondary]
			secVal = preds[pl.secondary].Value
		} else {
			pos = s.rankPos[pl.secondary]
		}
	}
	for _, r := range pl.list {
		if pos != nil {
			if p := pos[r]; p < pl.secFrom || p >= pl.secTo {
				continue
			}
		} else if col != nil && col[r] != secVal {
			continue
		}
		if s.coversAt(preds, r) {
			out = append(out, s.tupleAt(r))
			if len(out) == want {
				break
			}
		}
	}
	return out
}

// selectGallop intersects the two posting lists with a galloping merge:
// the shorter list (the primary) drives, and the cursor into the longer
// one advances by exponential search, skipping runs of non-matching ranks.
func (s *Store) selectGallop(preds []dataspace.Pred, pl plan, want int) []dataspace.Tuple {
	a, b := pl.list, pl.secList
	out := make([]dataspace.Tuple, 0, min(want, len(a)))
	j := 0
	for _, r := range a {
		j = gallop(b, j, r)
		if j == len(b) {
			break
		}
		if b[j] != r {
			continue
		}
		if s.coversAt(preds, r) {
			out = append(out, s.tupleAt(r))
			if len(out) == want {
				break
			}
		}
	}
	return out
}

// gallop returns the smallest index >= lo with b[idx] >= target, probing
// exponentially and finishing with a binary search over the final window.
func gallop(b []int32, lo int, target int32) int {
	n := len(b)
	if lo >= n || b[lo] >= target {
		return lo
	}
	step := 1
	hi := lo + 1
	for hi < n && b[hi] < target {
		lo = hi
		hi += step
		step <<= 1
	}
	if hi > n {
		hi = n
	}
	// Invariant: b[lo] < target and (hi == n or b[hi] >= target).
	for lo+1 < hi {
		mid := int(uint(lo+hi) >> 1)
		if b[mid] < target {
			lo = mid
		} else {
			hi = mid
		}
	}
	return hi
}

// selectRange enumerates the primary sorted-column segment, filters by the
// secondary predicate while the ranks are still in value order, then
// restores rank order with one allocation-free sort of a pooled buffer.
func (s *Store) selectRange(preds []dataspace.Pred, pl plan, want int) []dataspace.Tuple {
	seg := s.sortedRank[pl.primary][pl.from:pl.to]
	bufp := s.getScratch(len(seg))
	ranks := (*bufp)[:0]
	switch {
	case pl.secondary < 0:
		ranks = append(ranks, seg...)
	case s.isCat[pl.secondary]:
		col := s.cols[pl.secondary]
		v := preds[pl.secondary].Value
		for _, r := range seg {
			if col[r] == v {
				ranks = append(ranks, r)
			}
		}
	default:
		pos := s.rankPos[pl.secondary]
		for _, r := range seg {
			if p := pos[r]; p >= pl.secFrom && p < pl.secTo {
				ranks = append(ranks, r)
			}
		}
	}
	slices.Sort(ranks)
	out := make([]dataspace.Tuple, 0, min(want, len(ranks)))
	for _, r := range ranks {
		if s.coversAt(preds, r) {
			out = append(out, s.tupleAt(r))
			if len(out) == want {
				break
			}
		}
	}
	*bufp = ranks[:0]
	s.scratch.Put(bufp)
	return out
}

// SelectBatch answers every query of the batch with the same semantics as
// issuing B Select calls in order: result i is exactly Select(qs[i], limit).
// A single Store evaluates the batch sequentially; the Sharded store
// overrides this with a per-shard parallel fan-out. A cancelled ctx stops
// the evaluation between queries: the answered prefix is returned and the
// caller reads ctx.Err() — with a live ctx the result is always complete,
// so cancellation support can never change what a batch answers.
func (s *Store) SelectBatch(ctx context.Context, qs []dataspace.Query, limit int) [][]dataspace.Tuple {
	out := make([][]dataspace.Tuple, 0, len(qs))
	for _, q := range qs {
		if ctx.Err() != nil {
			return out
		}
		out = append(out, s.Select(q, limit))
	}
	return out
}

// countBitmap answers a Count whose bound predicates are all bitmap-indexed
// equalities with a popcount of the bitmap intersection — no candidate is
// ever enumerated. ok=false means the query does not qualify and the caller
// falls back to the exact-cost planner.
func (s *Store) countBitmap(preds []dataspace.Pred) (int, bool) {
	if len(preds) > shapeMaxDims {
		return 0, false
	}
	var bmArr [shapeMaxDims]*rankBitmap
	bms := bmArr[:0]
	for i := range preds {
		p := &preds[i]
		if s.isCat[i] {
			if p.Wild {
				continue
			}
			if s.bitmaps[i] == nil {
				return 0, false
			}
			bm := s.bitmaps[i].get(p.Value)
			if bm == nil {
				// The value occurs nowhere, so the conjunction is empty
				// no matter what the other predicates say.
				return 0, true
			}
			bms = append(bms, bm)
		} else if p.Lo != dataspace.NegInf || p.Hi != dataspace.PosInf {
			return 0, false
		}
	}
	if len(bms) < 2 {
		return 0, false
	}
	for i := 1; i < len(bms); i++ {
		for j := i; j > 0 && bms[j].card < bms[j-1].card; j-- {
			bms[j], bms[j-1] = bms[j-1], bms[j]
		}
	}
	wordsp := s.words.Get().(*[]uint64)
	c := intersectCount(bms, *wordsp)
	s.words.Put(wordsp)
	return c, true
}

// Count returns the exact number of tuples matching q. Unlike Select it
// cannot early-exit, so the planner prefers any index path over the scan;
// result order is irrelevant, so no sorting or allocation happens on any
// path.
func (s *Store) Count(q dataspace.Query) int {
	n := s.n
	preds := q.Preds()
	if c, ok := s.countBitmap(preds); ok {
		return c
	}
	pl := s.choosePlan(preds, n)
	switch {
	case pl.bound == 0:
		return n
	case pl.primary < 0:
		c := 0
		for r := 0; r < n; r++ {
			if s.coversAt(preds, int32(r)) {
				c++
			}
		}
		return c
	case pl.bound == 1:
		// A single bound predicate: the path's candidate count is exact.
		return pl.m
	case s.isCat[pl.primary]:
		c := 0
		if pl.secondary >= 0 && s.isCat[pl.secondary] && useGallop(len(pl.secList), n) {
			b := pl.secList
			j := 0
			for _, r := range pl.list {
				j = gallop(b, j, r)
				if j == len(b) {
					break
				}
				if b[j] == r && s.coversAt(preds, r) {
					c++
				}
			}
			return c
		}
		var pos []int32
		var col []int64
		var secVal int64
		if pl.secondary >= 0 {
			if s.isCat[pl.secondary] {
				col = s.cols[pl.secondary]
				secVal = preds[pl.secondary].Value
			} else {
				pos = s.rankPos[pl.secondary]
			}
		}
		for _, r := range pl.list {
			if pos != nil {
				if p := pos[r]; p < pl.secFrom || p >= pl.secTo {
					continue
				}
			} else if col != nil && col[r] != secVal {
				continue
			}
			if s.coversAt(preds, r) {
				c++
			}
		}
		return c
	default:
		c := 0
		for _, r := range s.sortedRank[pl.primary][pl.from:pl.to] {
			if s.coversAt(preds, r) {
				c++
			}
		}
		return c
	}
}
