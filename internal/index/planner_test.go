package index

import (
	"fmt"
	"sync"
	"testing"

	"hidb/internal/datagen"
	"hidb/internal/dataspace"
	"hidb/internal/simrand"
)

// tierStore builds a Store over one scale-tier dataset. The 10k tier is
// above bitmapMinTuples, so every low-cardinality categorical attribute
// carries a bitmap index.
func tierStore(t *testing.T, p datagen.Pattern, seed uint64) *Store {
	t.Helper()
	d := datagen.Tiered(p, datagen.Tier10K, seed)
	s, err := New(d.Schema, d.Tuples)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// tierQuery draws a random query over the tier schema, spanning arities 0–6
// and occasionally aiming at the pathological needle conjunction.
func tierQuery(sch *dataspace.Schema, rng *simrand.RNG, n int) dataspace.Query {
	q := dataspace.UniverseQuery(sch)
	needle := rng.Bool(0.25)
	for i := 0; i < 3; i++ {
		if needle {
			q = q.WithValue(i, datagen.PathoNeedle)
		} else if rng.Bool(0.5) {
			q = q.WithValue(i, rng.IntRange(1, 32))
		}
	}
	if rng.Bool(0.3) {
		q = q.WithValue(3, rng.IntRange(1, 1024))
	}
	if rng.Bool(0.4) {
		lo := rng.IntRange(0, int64(n-1))
		q = q.WithRange(4, lo, lo+rng.IntRange(0, int64(n/4)))
	}
	if rng.Bool(0.3) {
		lo := rng.IntRange(0, 1<<20)
		q = q.WithRange(5, lo, lo+rng.IntRange(0, 1<<18))
	}
	return q
}

func sameTuples(a, b []dataspace.Tuple) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !a[i].Equal(b[i]) {
			return false
		}
	}
	return true
}

// forceBitmapPlan builds the bitmap plan for the query's predicates the way
// planPath would, regardless of cost. ok=false when fewer than two bound
// equality predicates carry bitmap indexes.
func forceBitmapPlan(s *Store, preds []dataspace.Pred) (*cachedPlan, bool) {
	var attrs []int8
	var skip uint64
	bound := 0
	for i := range preds {
		p := &preds[i]
		if s.isCat[i] {
			if p.Wild {
				continue
			}
			bound++
			if s.bitmaps[i] != nil {
				attrs = append(attrs, int8(i))
				skip |= 1 << uint(i)
			}
		} else if p.Lo != dataspace.NegInf || p.Hi != dataspace.PosInf {
			bound++
		}
	}
	if len(attrs) < 2 {
		return nil, false
	}
	return &cachedPlan{
		path: pathBitmap, primary: -1, secondary: -1,
		bitmapAttrs: attrs, bitmapSkip: skip, exact: bound == len(attrs),
	}, true
}

// v1Select dispatches the v1 planner's plan the way the old Select did —
// the reference implementation the bitmap and chunked-scan paths must match.
func v1Select(s *Store, preds []dataspace.Pred, pl plan, want int) []dataspace.Tuple {
	if s.isCat[pl.primary] {
		if pl.secondary >= 0 && s.isCat[pl.secondary] && useGallop(len(pl.secList), len(s.byRank)) {
			return s.selectGallop(preds, pl, want)
		}
		return s.selectPosting(preds, pl, want)
	}
	return s.selectRange(preds, pl, want)
}

// TestAccessPathsAgreeAcrossPatterns is the planner-v2 oracle: on every
// generator pattern, for random queries of every arity, the chunked scan,
// the posting/gallop/range family, and the bitmap path must all return
// exactly the naive reference answer — same tuples, same order.
func TestAccessPathsAgreeAcrossPatterns(t *testing.T) {
	for _, p := range datagen.Patterns {
		p := p
		t.Run(p.String(), func(t *testing.T) {
			s := tierStore(t, p, 11)
			n := s.Size()
			rng := simrand.New(uint64(p) + 101)
			bitmapQueries := 0
			for trial := 0; trial < 150; trial++ {
				q := tierQuery(s.Schema(), rng, n)
				preds := q.Preds()
				for _, limit := range []int{0, 9, 64} {
					want := limit + 1
					expect := naive(s, q, want)
					if got := s.Select(q, limit); !sameTuples(got, expect) {
						t.Fatalf("trial %d limit %d: Select diverges from naive on %s", trial, limit, q)
					}
					if got := s.selectScan(preds, want); !sameTuples(got, expect) {
						t.Fatalf("trial %d limit %d: chunked scan diverges from naive on %s", trial, limit, q)
					}
					if pl := s.choosePlan(preds, n); pl.primary >= 0 {
						if got := v1Select(s, preds, pl, want); !sameTuples(got, expect) {
							t.Fatalf("trial %d limit %d: v1 %v path diverges from naive on %s",
								trial, limit, pl.primary, q)
						}
					}
					if cp, ok := forceBitmapPlan(s, preds); ok {
						bitmapQueries++
						if got := s.selectBitmap(cp, preds, want); !sameTuples(got, expect) {
							t.Fatalf("trial %d limit %d: bitmap path diverges from naive on %s", trial, limit, q)
						}
					}
				}
			}
			if bitmapQueries == 0 {
				t.Fatal("no trial exercised the bitmap path; query generator is broken")
			}
		})
	}
}

// TestAccessPathsAgreeUnderGallop re-runs the oracle with the column-cache
// threshold lowered so the v2 executor routes posting ∩ posting through the
// galloping merge, which test-sized stores never trigger by default.
func TestAccessPathsAgreeUnderGallop(t *testing.T) {
	defer func(v int) { colCacheTuples = v }(colCacheTuples)
	colCacheTuples = 0
	s := tierStore(t, datagen.PatternRandom, 13)
	rng := simrand.New(14)
	for trial := 0; trial < 150; trial++ {
		q := tierQuery(s.Schema(), rng, s.Size())
		got := s.Select(q, 64)
		if !sameTuples(got, naive(s, q, 65)) {
			t.Fatalf("trial %d: Select diverges from naive with gallop forced on %s", trial, q)
		}
	}
	if s.PlanStats().Paths["gallop"] == 0 {
		t.Log("no query routed through gallop; acceptable but unexpected")
	}
}

// TestCountMatchesNaiveAcrossPatterns checks Count — including the bitmap
// popcount fast path — against a full scan on every pattern.
func TestCountMatchesNaiveAcrossPatterns(t *testing.T) {
	for _, p := range datagen.Patterns {
		s := tierStore(t, p, 17)
		rng := simrand.New(uint64(p) + 23)
		for trial := 0; trial < 100; trial++ {
			q := tierQuery(s.Schema(), rng, s.Size())
			want := 0
			for _, tu := range s.All() {
				if q.Covers(tu) {
					want++
				}
			}
			if got := s.Count(q); got != want {
				t.Fatalf("%v trial %d: Count = %d, want %d on %s", p, trial, got, want, q)
			}
		}
	}
}

// TestPlanCacheCounters pins the cache's observable arithmetic: one miss
// per new shape, hits for every repeat, per-path counts summing to the
// Select count.
func TestPlanCacheCounters(t *testing.T) {
	s := tierStore(t, datagen.PatternRandom, 19)
	rng := simrand.New(20)
	sch := s.Schema()
	const repeats = 50
	// One shape: C1 = v, varying v.
	for i := 0; i < repeats; i++ {
		s.Select(dataspace.UniverseQuery(sch).WithValue(0, rng.IntRange(1, 32)), 64)
	}
	ps := s.PlanStats()
	if ps.Shapes != 1 || ps.Misses != 1 || ps.Hits != repeats-1 {
		t.Fatalf("after %d same-shape selects: shapes=%d hits=%d misses=%d, want 1/%d/1",
			repeats, ps.Shapes, ps.Hits, ps.Misses, repeats-1)
	}
	// A second shape: C1 = v ∧ C2 = w.
	s.Select(dataspace.UniverseQuery(sch).WithValue(0, 1).WithValue(1, 2), 64)
	ps = s.PlanStats()
	if ps.Shapes != 2 || ps.Misses != 2 {
		t.Fatalf("after a second shape: shapes=%d misses=%d, want 2/2", ps.Shapes, ps.Misses)
	}
	var pathTotal int64
	for _, v := range ps.Paths {
		pathTotal += v
	}
	if pathTotal != repeats+1 {
		t.Fatalf("path counts sum to %d, want %d", pathTotal, repeats+1)
	}
	if hr := ps.HitRate(); hr <= 0.9 {
		t.Fatalf("hit rate %.3f, want > 0.9", hr)
	}
	if (PlanStats{}).HitRate() != 0 {
		t.Fatal("empty PlanStats should have hit rate 0")
	}
}

// TestPlanCacheCap verifies the cache stops growing at planCacheCap and
// keeps answering correctly (over-cap shapes just re-plan).
func TestPlanCacheCap(t *testing.T) {
	defer func(v int) { planCacheCap = v }(planCacheCap)
	planCacheCap = 2
	s := tierStore(t, datagen.PatternRandom, 29)
	sch := s.Schema()
	queries := []dataspace.Query{
		dataspace.UniverseQuery(sch).WithValue(0, 3),
		dataspace.UniverseQuery(sch).WithValue(1, 4),
		dataspace.UniverseQuery(sch).WithValue(2, 5),
		dataspace.UniverseQuery(sch).WithValue(3, 6),
	}
	for _, q := range queries {
		for i := 0; i < 3; i++ {
			if !sameTuples(s.Select(q, 64), naive(s, q, 65)) {
				t.Fatalf("over-cap query diverges from naive: %s", q)
			}
		}
	}
	if ps := s.PlanStats(); ps.Shapes != 2 {
		t.Fatalf("capped cache holds %d shapes, want 2", ps.Shapes)
	}
}

// TestPlanCacheConcurrent hammers one store from many goroutines with a
// mixed shape workload. Run under -race this is the lock-freedom proof for
// the copy-on-write cache; the result check keeps it honest.
func TestPlanCacheConcurrent(t *testing.T) {
	s := tierStore(t, datagen.PatternRealistic, 31)
	const workers, perWorker = 8, 100
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := simrand.New(uint64(w) + 41)
			for i := 0; i < perWorker; i++ {
				q := tierQuery(s.Schema(), rng, s.Size())
				if !sameTuples(s.Select(q, 64), naive(s, q, 65)) {
					errs <- fmt.Errorf("worker %d: Select diverges from naive on %s", w, q)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	ps := s.PlanStats()
	if ps.Hits+ps.Misses != workers*perWorker {
		t.Fatalf("hits+misses = %d, want %d", ps.Hits+ps.Misses, workers*perWorker)
	}
}

// TestShapeKey pins the shape-key packing: values never matter, predicate
// kinds always do, and schemas beyond 32 attributes opt out.
func TestShapeKey(t *testing.T) {
	isCat := []bool{true, true, false, false}
	u := func() []dataspace.Pred {
		return []dataspace.Pred{
			{Wild: true}, {Wild: true},
			{Lo: dataspace.NegInf, Hi: dataspace.PosInf},
			{Lo: dataspace.NegInf, Hi: dataspace.PosInf},
		}
	}
	base, ok := shapeKey(isCat, u())
	if !ok {
		t.Fatal("4-dim shape key should pack")
	}
	// Same shape, different values → same key.
	a := u()
	a[0] = dataspace.Pred{Value: 3}
	a[2] = dataspace.Pred{Lo: 5, Hi: 10}
	b := u()
	b[0] = dataspace.Pred{Value: 9}
	b[2] = dataspace.Pred{Lo: -50, Hi: 4000}
	ka, _ := shapeKey(isCat, a)
	kb, _ := shapeKey(isCat, b)
	if ka != kb {
		t.Fatalf("same shape hashed differently: %x vs %x", ka, kb)
	}
	if ka == base {
		t.Fatal("bound shape collides with the universe shape")
	}
	// Point range vs proper range vs unbounded are distinct shapes.
	c := u()
	c[2] = dataspace.Pred{Lo: 7, Hi: 7}
	kc, _ := shapeKey(isCat, c)
	d := u()
	d[2] = dataspace.Pred{Lo: 7, Hi: 8}
	kd, _ := shapeKey(isCat, d)
	if kc == kd || kc == base || kd == base {
		t.Fatalf("numeric shapes collide: point=%x range=%x free=%x", kc, kd, base)
	}
	// 33 attributes cannot pack.
	wide := make([]dataspace.Pred, 33)
	if _, ok := shapeKey(make([]bool, 33), wide); ok {
		t.Fatal("33-dim shape key should not pack")
	}
}

// TestWideSchemaUncached verifies a store wider than the shape key still
// answers correctly, planning every query (all misses, no cached shapes).
func TestWideSchemaUncached(t *testing.T) {
	attrs := make([]dataspace.Attribute, 33)
	for i := range attrs {
		attrs[i] = dataspace.Attribute{
			Name: fmt.Sprintf("C%d", i+1), Kind: dataspace.Categorical, DomainSize: 4,
		}
	}
	sch := dataspace.MustSchema(attrs)
	rng := simrand.New(43)
	tuples := make([]dataspace.Tuple, 500)
	for i := range tuples {
		tu := make(dataspace.Tuple, 33)
		for j := range tu {
			tu[j] = rng.IntRange(1, 4)
		}
		tuples[i] = tu
	}
	s, err := New(sch, tuples)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 30; trial++ {
		q := dataspace.UniverseQuery(sch)
		for j := 0; j < 33; j++ {
			if rng.Bool(0.2) {
				q = q.WithValue(j, rng.IntRange(1, 4))
			}
		}
		if !sameTuples(s.Select(q, 10), naive(s, q, 11)) {
			t.Fatalf("trial %d: wide-schema Select diverges from naive", trial)
		}
	}
	ps := s.PlanStats()
	if ps.Shapes != 0 || ps.Hits != 0 || ps.Misses != 30 {
		t.Fatalf("wide schema: shapes=%d hits=%d misses=%d, want 0/0/30",
			ps.Shapes, ps.Hits, ps.Misses)
	}
}

// TestShardedSharesStatsKeepsPlans pins the Sharded contract: one shared
// selectivity sample, independent per-shard plan caches, aggregated
// PlanStats.
func TestShardedSharesStatsKeepsPlans(t *testing.T) {
	d := datagen.Tiered(datagen.PatternRandom, datagen.Tier10K, 47)
	sh, err := NewSharded(d.Schema, d.Tuples, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(sh.shards); i++ {
		if sh.shards[i].stats != sh.shards[0].stats {
			t.Fatal("shards should share one SelStats instance")
		}
	}
	if got := sh.shards[0].stats.SampleSize(); got != statsSampleMax {
		t.Fatalf("shared sample size = %d, want %d", got, statsSampleMax)
	}
	rng := simrand.New(48)
	for i := 0; i < 40; i++ {
		q := tierQuery(d.Schema, rng, len(d.Tuples))
		got := sh.Select(q, 64)
		single, err := New(d.Schema, d.Tuples)
		_ = err
		if !sameTuples(got, naive(single, q, 65)) {
			t.Fatalf("sharded Select diverges from naive on %s", q)
		}
	}
	ps := sh.PlanStats()
	if ps.Hits+ps.Misses == 0 {
		t.Fatal("sharded PlanStats should aggregate shard counters")
	}
}

// TestSelStats sanity-checks the sampled statistics themselves.
func TestSelStats(t *testing.T) {
	d := datagen.Tiered(datagen.PatternRandom, datagen.Tier10K, 53)
	s, err := New(d.Schema, d.Tuples)
	if err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.SampleSize() != statsSampleMax {
		t.Fatalf("sample size = %d, want %d", st.SampleSize(), statsSampleMax)
	}
	sch := d.Schema
	uni := dataspace.UniverseQuery(sch)
	if sel := st.jointSel(uni.Preds()); sel != 1 {
		t.Fatalf("universe selectivity = %v, want 1", sel)
	}
	// A value outside the generated domain: floored, never zero.
	impossible := uni.WithValue(0, 31337)
	if sel := st.jointSel(impossible.Preds()); sel <= 0 || sel > 1.0/float64(statsSampleMax) {
		t.Fatalf("impossible-predicate selectivity = %v, want the 0.5/S floor", sel)
	}
	// Uniform 32-way categorical: second moment near 1/32.
	if es := st.EqSel(0); es < 0.01 || es > 0.1 {
		t.Fatalf("EqSel(C1) = %v, want ≈ 1/32", es)
	}
	if es := st.EqSel(4); es != 0 {
		t.Fatalf("EqSel(numeric) = %v, want 0", es)
	}
	// Empty store: selectivity defaults to 1, nothing divides by zero.
	empty, err := New(d.Schema, nil)
	if err != nil {
		t.Fatal(err)
	}
	if sel := empty.Stats().jointSel(uni.Preds()); sel != 1 {
		t.Fatalf("empty-store selectivity = %v, want 1", sel)
	}
	if got := empty.Select(uni, 5); len(got) != 0 {
		t.Fatalf("empty-store Select returned %d tuples", len(got))
	}
}

// TestSelectAllocsSteadyState pins the one-allocation Select contract on
// every access path: once the plan is cached and the scratch pools are
// warm, a Select allocates exactly its result slice.
func TestSelectAllocsSteadyState(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops items nondeterministically under -race")
	}
	s := tierStore(t, datagen.PatternPathological, 67)
	sch := s.Schema()
	needle := dataspace.UniverseQuery(sch).
		WithValue(0, datagen.PathoNeedle).
		WithValue(1, datagen.PathoNeedle).
		WithValue(2, datagen.PathoNeedle)
	cases := []struct {
		name string
		q    dataspace.Query
	}{
		{"scan", dataspace.UniverseQuery(sch)},
		{"posting", dataspace.UniverseQuery(sch).WithValue(3, 7)},
		{"range", dataspace.UniverseQuery(sch).WithRange(4, 100, 3000).WithValue(0, 2)},
		{"bitmap", needle},
	}
	for _, tc := range cases {
		q := tc.q
		s.Select(q, 64) // plan + pool warmup before measuring
		allocs := testing.AllocsPerRun(100, func() {
			s.Select(q, 64)
		})
		if allocs > 1 {
			t.Errorf("%s path: %.1f allocs per Select, want <= 1", tc.name, allocs)
		}
	}
	if allocs := testing.AllocsPerRun(100, func() { s.Count(needle) }); allocs > 0 {
		t.Errorf("Count: %.1f allocs, want 0", allocs)
	}
}

// TestPlannerPicksBitmapForNeedle pins the cost model's headline decision:
// the pathological 3-way intersection must route to the bitmap path (and a
// broad single equality must not).
func TestPlannerPicksBitmapForNeedle(t *testing.T) {
	s := tierStore(t, datagen.PatternPathological, 71)
	sch := s.Schema()
	needle := dataspace.UniverseQuery(sch).
		WithValue(0, datagen.PathoNeedle).
		WithValue(1, datagen.PathoNeedle).
		WithValue(2, datagen.PathoNeedle)
	s.Select(needle, 64)
	if ps := s.PlanStats(); ps.Paths["bitmap"] != 1 {
		t.Fatalf("needle conjunction executed paths %v, want the bitmap path", ps.Paths)
	}
	broad := dataspace.UniverseQuery(sch).WithValue(0, datagen.PathoNeedle)
	s.Select(broad, 64)
	if ps := s.PlanStats(); ps.Paths["bitmap"] != 1 {
		t.Fatalf("broad single equality should not use the bitmap path: %v", ps.Paths)
	}
}

// TestBitmapGatesRespected checks the build-time gating: small stores and
// wide-domain attributes must not pay for bitmap indexes.
func TestBitmapGatesRespected(t *testing.T) {
	d := datagen.Tiered(datagen.PatternRandom, datagen.Tier10K, 59)
	s, err := New(d.Schema, d.Tuples)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if s.bitmaps[i] == nil {
			t.Fatalf("C%d (domain 32) should carry a bitmap index at 10k tuples", i+1)
		}
	}
	if s.bitmaps[3] != nil {
		t.Fatal("C4 (domain 1024) must not carry a bitmap index")
	}
	if s.bitmaps[4] != nil || s.bitmaps[5] != nil {
		t.Fatal("numeric attributes must not carry bitmap indexes")
	}
	small, err := New(d.Schema, d.Tuples[:1000])
	if err != nil {
		t.Fatal(err)
	}
	for i := range small.bitmaps {
		if small.bitmaps[i] != nil {
			t.Fatalf("a 1000-tuple store should build no bitmap indexes (attr %d)", i)
		}
	}
}
