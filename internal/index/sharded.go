// Priority-range sharding. A Sharded store partitions the relation into
// contiguous priority-rank segments and gives each segment its own fully
// indexed Store (columns, posting lists, sorted segments, scratch pool).
// Because the segments are rank ranges, the global priority order is the
// concatenation of the shards' local orders: shard 0 holds the tuples the
// server prefers to return first, shard 1 the next band, and so on. That
// makes every read exact — a Select over the sharded store returns
// bit-identical results to the single-Store engine — while letting a batch
// of queries fan out across shards on independent goroutines with no shared
// mutable state and no scratch-pool contention.
package index

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"hidb/internal/dataspace"
)

// Engine is the query-evaluation contract the hiddendb server builds on.
// Store and Sharded both implement it; all methods are safe for concurrent
// use after construction.
type Engine interface {
	// Select returns up to limit+1 matching tuples in descending priority
	// order (limit+1 results signal overflow).
	Select(q dataspace.Query, limit int) []dataspace.Tuple
	// SelectBatch answers each query exactly as Select would, in order.
	// A cancelled ctx stops the batch between queries; the answered
	// prefix is returned (shorter than qs signals the cancellation).
	SelectBatch(ctx context.Context, qs []dataspace.Query, limit int) [][]dataspace.Tuple
	// Count returns the exact number of tuples matching q.
	Count(q dataspace.Query) int
	// Size returns the number of tuples in the store.
	Size() int
	// Schema returns the store's schema.
	Schema() *dataspace.Schema
	// All returns the tuples in priority order (shared storage, read-only).
	All() []dataspace.Tuple
	// PlanStats returns the planner's cumulative counters: cached shapes,
	// plan-cache hits/misses, and per-access-path Select execution counts.
	PlanStats() PlanStats
	// EngineStats returns the engine's kind ("mem", "disk") and, for
	// engines that serve rows through a cache, its hit/miss counters.
	EngineStats() EngineStats
}

// EngineStats identifies which engine implementation answers queries and,
// for disk-backed engines, how its block cache is behaving. The in-memory
// engines report only their kind; counters stay zero.
type EngineStats struct {
	// Kind names the backing engine: "mem" or "disk".
	Kind string `json:"kind"`
	// CacheHits and CacheMisses count block-cache lookups during row
	// materialization (disk engines only).
	CacheHits   int64 `json:"cacheHits"`
	CacheMisses int64 `json:"cacheMisses"`
	// CacheBlocks is the number of currently resident cache blocks.
	CacheBlocks int `json:"cacheBlocks"`
}

var (
	_ Engine = (*Store)(nil)
	_ Engine = (*Sharded)(nil)
)

// Sharded is a priority-range-partitioned Store. Immutable after
// NewSharded and safe for concurrent readers.
type Sharded struct {
	schema *dataspace.Schema
	// byRank is the full relation in descending priority order; the shards
	// alias contiguous segments of it.
	byRank []dataspace.Tuple
	shards []*Store
}

// NewSharded builds a sharded store over tuples already arranged in
// descending priority order, split into the given number of near-equal
// contiguous rank ranges. A shard count exceeding the tuple count is
// clamped, so every shard is non-empty.
func NewSharded(schema *dataspace.Schema, byRank []dataspace.Tuple, shards int) (*Sharded, error) {
	if shards < 1 {
		return nil, fmt.Errorf("index: shard count must be >= 1, got %d", shards)
	}
	// One unified clamp for every relation size: a shard count above n
	// collapses to n so no shard is ever empty, and the empty relation is
	// its own floor — it still gets exactly one (empty) shard, so the
	// zero-tuple store answers through the same code path as any other.
	n := len(byRank)
	shards = min(shards, max(n, 1))
	if schema == nil {
		return nil, fmt.Errorf("index: nil schema")
	}
	// One selectivity sample over the whole relation, shared by every
	// shard: selectivity is a property of the data shape, not of any one
	// priority band, and a full-relation sample is strictly better than
	// per-shard ones. Plan caches stay per-shard — each shard's posting
	// lists have their own sizes, so shards may legitimately pick
	// different paths for the same shape.
	stats := buildSelStats(schema, byRank)
	s := &Sharded{schema: schema, byRank: byRank, shards: make([]*Store, 0, shards)}
	for i := 0; i < shards; i++ {
		lo, hi := i*n/shards, (i+1)*n/shards
		st, err := newWithStats(schema, byRank[lo:hi], stats)
		if err != nil {
			return nil, fmt.Errorf("index: shard %d (ranks [%d,%d)): %w", i, lo, hi, err)
		}
		s.shards = append(s.shards, st)
	}
	return s, nil
}

// PlanStats aggregates the per-shard planner counters. Shapes counts
// cached (shard, shape) pairs, so it can exceed the number of distinct
// query shapes the store has seen.
func (s *Sharded) PlanStats() PlanStats {
	var ps PlanStats
	for _, sh := range s.shards {
		ps.Merge(sh.PlanStats())
	}
	return ps
}

// EngineStats identifies the in-memory engine.
func (s *Sharded) EngineStats() EngineStats { return EngineStats{Kind: "mem"} }

// NumShards returns the number of priority-range partitions.
func (s *Sharded) NumShards() int { return len(s.shards) }

// Size returns the number of tuples across all shards.
func (s *Sharded) Size() int { return len(s.byRank) }

// Schema returns the store's schema.
func (s *Sharded) Schema() *dataspace.Schema { return s.schema }

// All returns the tuples in priority order. The slice and its tuples are
// shared; callers must not mutate them.
func (s *Sharded) All() []dataspace.Tuple { return s.byRank }

// Select returns up to limit+1 tuples matching q in descending priority
// order, identical to the single-Store result. Shards are visited in
// priority order, so an overflowing query usually terminates within the
// first shard and never touches the cold tail of the store.
func (s *Sharded) Select(q dataspace.Query, limit int) []dataspace.Tuple {
	if limit < 0 {
		limit = 0
	}
	want := limit + 1
	var out []dataspace.Tuple
	for _, sh := range s.shards {
		got := sh.Select(q, want-len(out)-1)
		if out == nil {
			out = got // common case: the first shard already decides
		} else {
			out = append(out, got...)
		}
		if len(out) >= want {
			break
		}
	}
	if out == nil {
		out = []dataspace.Tuple{}
	}
	return out
}

// SelectBatch answers every query of the batch concurrently: each query
// runs Select's priority-ordered early-exit shard walk on its own
// goroutine, so a large batch saturates the cores with no redundant work —
// an overflowing query stops at the first shards that satisfy it instead
// of paying every shard for results the merge would discard, and each
// shard's own scratch pool serves whatever queries actually reach it. The
// fan-out is capped at GOMAXPROCS live goroutines, so a client-sized batch
// (the /batch endpoint accepts megabytes of queries) cannot flood the
// scheduler. Result i is exactly Select(qs[i], limit).
//
// A cancelled ctx stops the fan-out: no further queries are launched, the
// ones already in flight finish (their work is local and cannot be torn
// mid-read), and the answered prefix is returned. The ctx belongs to the
// one caller whose batch this is — concurrent SelectBatch calls from other
// sessions carry their own ctx and are untouched by this cancellation.
func (s *Sharded) SelectBatch(ctx context.Context, qs []dataspace.Query, limit int) [][]dataspace.Tuple {
	if len(s.shards) == 1 {
		return s.shards[0].SelectBatch(ctx, qs, limit)
	}
	out := make([][]dataspace.Tuple, len(qs))
	var wg sync.WaitGroup
	gate := make(chan struct{}, runtime.GOMAXPROCS(0))
	launched := len(qs)
	for i, q := range qs {
		if ctx.Err() != nil {
			launched = i
			break
		}
		wg.Add(1)
		gate <- struct{}{}
		go func(i int, q dataspace.Query) {
			defer wg.Done()
			out[i] = s.Select(q, limit)
			<-gate
		}(i, q)
	}
	wg.Wait()
	return out[:launched]
}

// Count returns the exact number of tuples matching q: the sum of the
// per-shard counts, since the shards partition the relation. Unlike
// Select's priority-ordered early-exit walk, a count has no early exit —
// every shard must be consulted — so the per-shard counts run on
// concurrent goroutines, mirroring SelectBatch's fan-out: each shard scans
// its own columns with its own scratch memory and the partial sums land in
// distinct slots, no shared mutable state. Small stores skip the fan-out;
// goroutine overhead would dominate the per-shard scans.
func (s *Sharded) Count(q dataspace.Query) int {
	const fanOutMin = 1 << 14 // tuples; below this a serial walk is faster
	if len(s.shards) == 1 || len(s.byRank) < fanOutMin {
		c := 0
		for _, sh := range s.shards {
			c += sh.Count(q)
		}
		return c
	}
	counts := make([]int, len(s.shards))
	var wg sync.WaitGroup
	for i, sh := range s.shards {
		wg.Add(1)
		go func(i int, sh *Store) {
			defer wg.Done()
			counts[i] = sh.Count(q)
		}(i, sh)
	}
	wg.Wait()
	c := 0
	for _, n := range counts {
		c += n
	}
	return c
}
