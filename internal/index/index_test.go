package index

import (
	"fmt"
	"testing"
	"testing/quick"

	"hidb/internal/dataspace"
	"hidb/internal/simrand"
)

func testSchema(t *testing.T) *dataspace.Schema {
	t.Helper()
	return dataspace.MustSchema([]dataspace.Attribute{
		{Name: "C1", Kind: dataspace.Categorical, DomainSize: 5},
		{Name: "C2", Kind: dataspace.Categorical, DomainSize: 20},
		{Name: "N1", Kind: dataspace.Numeric, Min: 0, Max: 1000},
		{Name: "N2", Kind: dataspace.Numeric, Min: -100, Max: 100},
	})
}

func testStore(t *testing.T, n int, seed uint64) *Store {
	t.Helper()
	sch := testSchema(t)
	rng := simrand.New(seed)
	tuples := make([]dataspace.Tuple, n)
	for i := range tuples {
		tuples[i] = dataspace.Tuple{
			rng.IntRange(1, 5),
			rng.IntRange(1, 20),
			rng.IntRange(0, 1000),
			rng.IntRange(-100, 100),
		}
	}
	s, err := New(sch, tuples)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// randomQuery builds a query with a random mix of constraining predicates.
func randomQuery(sch *dataspace.Schema, rng *simrand.RNG) dataspace.Query {
	q := dataspace.UniverseQuery(sch)
	if rng.Bool(0.5) {
		q = q.WithValue(0, rng.IntRange(1, 5))
	}
	if rng.Bool(0.5) {
		q = q.WithValue(1, rng.IntRange(1, 20))
	}
	if rng.Bool(0.7) {
		lo := rng.IntRange(0, 900)
		q = q.WithRange(2, lo, lo+rng.IntRange(0, 100))
	}
	if rng.Bool(0.7) {
		lo := rng.IntRange(-100, 50)
		q = q.WithRange(3, lo, lo+rng.IntRange(0, 50))
	}
	return q
}

// naive computes the reference answer: qualifying tuples in rank order,
// truncated to want.
func naive(s *Store, q dataspace.Query, want int) []dataspace.Tuple {
	var out []dataspace.Tuple
	for _, t := range s.All() {
		if q.Covers(t) {
			out = append(out, t)
			if len(out) == want {
				break
			}
		}
	}
	return out
}

// TestSelectMatchesNaive is the core property: whatever access path the
// planner picks, the result must equal the priority-ordered scan.
func TestSelectMatchesNaive(t *testing.T) {
	s := testStore(t, 5000, 1)
	rng := simrand.New(2)
	for trial := 0; trial < 500; trial++ {
		q := randomQuery(s.Schema(), rng)
		for _, limit := range []int{0, 1, 10, 100} {
			got := s.Select(q, limit)
			want := naive(s, q, limit+1)
			if len(got) != len(want) {
				t.Fatalf("trial %d limit %d: got %d tuples, want %d (query %s)",
					trial, limit, len(got), len(want), q)
			}
			for i := range got {
				if !got[i].Equal(want[i]) {
					t.Fatalf("trial %d limit %d: tuple %d differs: %v vs %v",
						trial, limit, i, got[i], want[i])
				}
			}
		}
	}
}

func TestSelectOverflowSignal(t *testing.T) {
	s := testStore(t, 1000, 3)
	sch := s.Schema()
	u := dataspace.UniverseQuery(sch)
	got := s.Select(u, 10)
	if len(got) != 11 {
		t.Fatalf("universe with limit 10 returned %d tuples, want 11 (overflow marker)", len(got))
	}
	// A point query over generated data is almost surely <= limit.
	got = s.Select(u, 2000)
	if len(got) != 1000 {
		t.Fatalf("universe with big limit returned %d, want all 1000", len(got))
	}
}

func TestSelectRankOrder(t *testing.T) {
	s := testStore(t, 2000, 5)
	q := dataspace.UniverseQuery(s.Schema()).WithValue(0, 3)
	got := s.Select(q, 50)
	// Results must appear in the global priority order: each returned
	// tuple's rank must be increasing.
	rank := map[*int64]int{}
	_ = rank
	last := -1
	for _, tu := range got {
		// Find the tuple's rank by scanning byRank (test-only cost).
		r := -1
		for i, bt := range s.All() {
			if &bt[0] == &tu[0] {
				r = i
				break
			}
		}
		if r < 0 {
			t.Fatal("returned tuple not found in store")
		}
		if r <= last {
			t.Fatalf("results out of priority order: rank %d after %d", r, last)
		}
		last = r
	}
}

func TestCount(t *testing.T) {
	s := testStore(t, 3000, 7)
	rng := simrand.New(8)
	for trial := 0; trial < 100; trial++ {
		q := randomQuery(s.Schema(), rng)
		want := len(naive(s, q, 1<<30))
		if got := s.Count(q); got != want {
			t.Fatalf("Count = %d, want %d", got, want)
		}
	}
}

func TestNewValidates(t *testing.T) {
	sch := testSchema(t)
	if _, err := New(nil, nil); err == nil {
		t.Error("nil schema accepted")
	}
	bad := []dataspace.Tuple{{9, 1, 0, 0}} // C1 outside [1,5]
	if _, err := New(sch, bad); err == nil {
		t.Error("invalid tuple accepted")
	}
}

func TestEmptyStore(t *testing.T) {
	s, err := New(testSchema(t), nil)
	if err != nil {
		t.Fatal(err)
	}
	if s.Size() != 0 {
		t.Fatal("empty store has nonzero size")
	}
	got := s.Select(dataspace.UniverseQuery(s.Schema()), 10)
	if len(got) != 0 {
		t.Fatal("empty store returned tuples")
	}
}

// randomSchema draws a schema with a random categorical prefix and numeric
// suffix (1..6 attributes total, domain sizes 1..12).
func randomSchema(rng *simrand.RNG) *dataspace.Schema {
	nc := int(rng.IntRange(0, 3))
	nn := int(rng.IntRange(0, 3))
	if nc+nn == 0 {
		nc = 1
	}
	var attrs []dataspace.Attribute
	for i := 0; i < nc; i++ {
		attrs = append(attrs, dataspace.Attribute{
			Name: fmt.Sprintf("C%d", i), Kind: dataspace.Categorical,
			DomainSize: int(rng.IntRange(1, 12)),
		})
	}
	for i := 0; i < nn; i++ {
		attrs = append(attrs, dataspace.Attribute{
			Name: fmt.Sprintf("N%d", i), Kind: dataspace.Numeric, Min: -30, Max: 30,
		})
	}
	return dataspace.MustSchema(attrs)
}

// randomBag fills a bag for the schema; the tight value ranges force heavy
// duplication, exercising posting lists with long runs and ties in the
// sorted numeric columns.
func randomBag(sch *dataspace.Schema, n int, rng *simrand.RNG) []dataspace.Tuple {
	tuples := make([]dataspace.Tuple, n)
	for i := range tuples {
		tu := make(dataspace.Tuple, sch.Dims())
		for a := 0; a < sch.Dims(); a++ {
			attr := sch.Attr(a)
			if attr.Kind == dataspace.Categorical {
				tu[a] = rng.IntRange(1, int64(attr.DomainSize))
			} else {
				tu[a] = rng.IntRange(-30, 30)
			}
		}
		tuples[i] = tu
	}
	return tuples
}

// randomQueryOver draws a query with a random mix of wildcards, equalities
// (sometimes on values absent from the data), and numeric ranges (from
// unbounded through empty single-point windows).
func randomQueryOver(sch *dataspace.Schema, rng *simrand.RNG) dataspace.Query {
	q := dataspace.UniverseQuery(sch)
	for a := 0; a < sch.Dims(); a++ {
		attr := sch.Attr(a)
		if attr.Kind == dataspace.Categorical {
			if rng.Bool(0.6) {
				q = q.WithValue(a, rng.IntRange(1, int64(attr.DomainSize)))
			}
		} else if rng.Bool(0.7) {
			lo := rng.IntRange(-35, 30)
			width := rng.IntRange(0, 25)
			if rng.Bool(0.1) {
				width = -rng.IntRange(1, 10) // inverted (empty) range
			}
			q = q.WithRange(a, lo, lo+width)
		}
	}
	return q
}

// TestPropertyRandomEngineMatchesNaiveScan pins planner correctness across
// every access path: for randomized schemas, bags and queries, Select must
// return exactly the tuples — in exactly the order — of a naive
// priority-order scan, and Count must agree with the scan's total.
func TestPropertyRandomEngineMatchesNaiveScan(t *testing.T) {
	rng := simrand.New(99)
	for trial := 0; trial < 40; trial++ {
		sch := randomSchema(rng)
		n := int(rng.IntRange(0, 600))
		s, err := New(sch, randomBag(sch, n, rng))
		if err != nil {
			t.Fatal(err)
		}
		for qt := 0; qt < 60; qt++ {
			q := randomQueryOver(sch, rng)
			limit := int(rng.IntRange(0, 40))
			got := s.Select(q, limit)
			want := naive(s, q, limit+1)
			if len(got) != len(want) {
				t.Fatalf("trial %d: schema %s n=%d query %s limit %d: got %d tuples, want %d",
					trial, sch, n, q, limit, len(got), len(want))
			}
			for i := range got {
				if !got[i].Equal(want[i]) {
					t.Fatalf("trial %d: schema %s query %s limit %d: tuple %d differs: %v vs %v",
						trial, sch, q, limit, i, got[i], want[i])
				}
			}
			if gotC, wantC := s.Count(q), len(naive(s, q, 1<<30)); gotC != wantC {
				t.Fatalf("trial %d: schema %s query %s: Count = %d, want %d",
					trial, sch, q, gotC, wantC)
			}
		}
	}
}

// TestInvertedRange pins the empty-segment clamp: a query whose numeric
// range has Lo > Hi (constructible via WithRange, which never validates,
// and reachable because Local.Answer skips Validate for same-schema
// queries) must select nothing and count zero rather than panicking on a
// negative candidate count.
func TestInvertedRange(t *testing.T) {
	s := testStore(t, 500, 21)
	u := dataspace.UniverseQuery(s.Schema())
	queries := []dataspace.Query{
		u.WithRange(2, 50, 10),                    // inverted, only bound predicate
		u.WithRange(2, 50, 10).WithValue(0, 3),    // inverted secondary beside a posting list
		u.WithRange(2, 50, 10).WithRange(3, 0, 5), // inverted primary beside a live range
	}
	for i, q := range queries {
		if got := s.Select(q, 10); len(got) != 0 {
			t.Errorf("query %d: Select returned %d tuples for an empty range", i, len(got))
		}
		if got := s.Count(q); got != 0 {
			t.Errorf("query %d: Count = %d, want 0", i, got)
		}
	}
}

// TestGallop pins the exponential-search helper across window shapes.
func TestGallop(t *testing.T) {
	b := []int32{2, 3, 5, 8, 13, 21, 34, 55, 89}
	for lo := 0; lo <= len(b); lo++ {
		for target := int32(0); target < 100; target++ {
			got := gallop(b, lo, target)
			want := lo
			for want < len(b) && b[want] < target {
				want++
			}
			if got != want {
				t.Fatalf("gallop(lo=%d, target=%d) = %d, want %d", lo, target, got, want)
			}
		}
	}
}

// TestGallopPathsMatchColumnProbe lowers the cache-size gate so the
// planner actually routes posting ∩ posting queries through the galloping
// merge on a test-sized store, then checks Select and Count end-to-end
// against the naive scan. This is the only coverage of the gallop branches
// inside Select and Count at production thresholds (they need n ≥ 4M).
func TestGallopPathsMatchColumnProbe(t *testing.T) {
	defer func(old int) { colCacheTuples = old }(colCacheTuples)
	colCacheTuples = 0
	s := testStore(t, 4000, 23)
	rng := simrand.New(24)
	for trial := 0; trial < 200; trial++ {
		q := dataspace.UniverseQuery(s.Schema()).
			WithValue(0, rng.IntRange(1, 5)).
			WithValue(1, rng.IntRange(1, 20))
		for _, limit := range []int{0, 5, 100} {
			got := s.Select(q, limit)
			want := naive(s, q, limit+1)
			if len(got) != len(want) {
				t.Fatalf("trial %d limit %d: gallop Select %d tuples, naive %d", trial, limit, len(got), len(want))
			}
			for i := range got {
				if !got[i].Equal(want[i]) {
					t.Fatalf("trial %d limit %d: tuple %d differs", trial, limit, i)
				}
			}
		}
		if gotC, wantC := s.Count(q), len(naive(s, q, 1<<30)); gotC != wantC {
			t.Fatalf("trial %d: gallop Count = %d, want %d", trial, gotC, wantC)
		}
	}
}

// TestSelectGallopMatchesColumnProbe forces the galloping-merge
// intersection (normally reserved for stores too large for cache-resident
// columns) and checks it agrees with the default column-probe path.
func TestSelectGallopMatchesColumnProbe(t *testing.T) {
	s := testStore(t, 4000, 17)
	rng := simrand.New(18)
	for trial := 0; trial < 200; trial++ {
		q := dataspace.UniverseQuery(s.Schema()).
			WithValue(0, rng.IntRange(1, 5)).
			WithValue(1, rng.IntRange(1, 20))
		preds := q.Preds()
		pl := s.choosePlan(preds, s.Size()/4)
		if pl.primary < 0 || !s.isCat[pl.primary] || pl.secondary < 0 || !s.isCat[pl.secondary] {
			t.Fatalf("trial %d: expected a posting ∩ posting plan, got %+v", trial, pl)
		}
		for _, limit := range []int{0, 3, 50} {
			want := limit + 1
			gal := s.selectGallop(preds, pl, want)
			col := s.selectPosting(preds, pl, want)
			if len(gal) != len(col) {
				t.Fatalf("trial %d limit %d: gallop %d tuples, column probe %d", trial, limit, len(gal), len(col))
			}
			for i := range gal {
				if !gal[i].Equal(col[i]) {
					t.Fatalf("trial %d limit %d: tuple %d differs", trial, limit, i)
				}
			}
		}
	}
}

// Property: for random limits, Select never returns more than limit+1
// tuples and never misses a qualifying higher-priority tuple.
func TestSelectLimitProperty(t *testing.T) {
	s := testStore(t, 800, 11)
	rng := simrand.New(12)
	f := func(limRaw uint8) bool {
		limit := int(limRaw % 64)
		q := randomQuery(s.Schema(), rng)
		got := s.Select(q, limit)
		if len(got) > limit+1 {
			return false
		}
		want := naive(s, q, limit+1)
		return len(got) == len(want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
