package index

import (
	"testing"
	"testing/quick"

	"hidb/internal/dataspace"
	"hidb/internal/simrand"
)

func testSchema(t *testing.T) *dataspace.Schema {
	t.Helper()
	return dataspace.MustSchema([]dataspace.Attribute{
		{Name: "C1", Kind: dataspace.Categorical, DomainSize: 5},
		{Name: "C2", Kind: dataspace.Categorical, DomainSize: 20},
		{Name: "N1", Kind: dataspace.Numeric, Min: 0, Max: 1000},
		{Name: "N2", Kind: dataspace.Numeric, Min: -100, Max: 100},
	})
}

func testStore(t *testing.T, n int, seed uint64) *Store {
	t.Helper()
	sch := testSchema(t)
	rng := simrand.New(seed)
	tuples := make([]dataspace.Tuple, n)
	for i := range tuples {
		tuples[i] = dataspace.Tuple{
			rng.IntRange(1, 5),
			rng.IntRange(1, 20),
			rng.IntRange(0, 1000),
			rng.IntRange(-100, 100),
		}
	}
	s, err := New(sch, tuples)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// randomQuery builds a query with a random mix of constraining predicates.
func randomQuery(sch *dataspace.Schema, rng *simrand.RNG) dataspace.Query {
	q := dataspace.UniverseQuery(sch)
	if rng.Bool(0.5) {
		q = q.WithValue(0, rng.IntRange(1, 5))
	}
	if rng.Bool(0.5) {
		q = q.WithValue(1, rng.IntRange(1, 20))
	}
	if rng.Bool(0.7) {
		lo := rng.IntRange(0, 900)
		q = q.WithRange(2, lo, lo+rng.IntRange(0, 100))
	}
	if rng.Bool(0.7) {
		lo := rng.IntRange(-100, 50)
		q = q.WithRange(3, lo, lo+rng.IntRange(0, 50))
	}
	return q
}

// naive computes the reference answer: qualifying tuples in rank order,
// truncated to want.
func naive(s *Store, q dataspace.Query, want int) []dataspace.Tuple {
	var out []dataspace.Tuple
	for _, t := range s.All() {
		if q.Covers(t) {
			out = append(out, t)
			if len(out) == want {
				break
			}
		}
	}
	return out
}

// TestSelectMatchesNaive is the core property: whatever access path the
// planner picks, the result must equal the priority-ordered scan.
func TestSelectMatchesNaive(t *testing.T) {
	s := testStore(t, 5000, 1)
	rng := simrand.New(2)
	for trial := 0; trial < 500; trial++ {
		q := randomQuery(s.Schema(), rng)
		for _, limit := range []int{0, 1, 10, 100} {
			got := s.Select(q, limit)
			want := naive(s, q, limit+1)
			if len(got) != len(want) {
				t.Fatalf("trial %d limit %d: got %d tuples, want %d (query %s)",
					trial, limit, len(got), len(want), q)
			}
			for i := range got {
				if !got[i].Equal(want[i]) {
					t.Fatalf("trial %d limit %d: tuple %d differs: %v vs %v",
						trial, limit, i, got[i], want[i])
				}
			}
		}
	}
}

func TestSelectOverflowSignal(t *testing.T) {
	s := testStore(t, 1000, 3)
	sch := s.Schema()
	u := dataspace.UniverseQuery(sch)
	got := s.Select(u, 10)
	if len(got) != 11 {
		t.Fatalf("universe with limit 10 returned %d tuples, want 11 (overflow marker)", len(got))
	}
	// A point query over generated data is almost surely <= limit.
	got = s.Select(u, 2000)
	if len(got) != 1000 {
		t.Fatalf("universe with big limit returned %d, want all 1000", len(got))
	}
}

func TestSelectRankOrder(t *testing.T) {
	s := testStore(t, 2000, 5)
	q := dataspace.UniverseQuery(s.Schema()).WithValue(0, 3)
	got := s.Select(q, 50)
	// Results must appear in the global priority order: each returned
	// tuple's rank must be increasing.
	rank := map[*int64]int{}
	_ = rank
	last := -1
	for _, tu := range got {
		// Find the tuple's rank by scanning byRank (test-only cost).
		r := -1
		for i, bt := range s.All() {
			if &bt[0] == &tu[0] {
				r = i
				break
			}
		}
		if r < 0 {
			t.Fatal("returned tuple not found in store")
		}
		if r <= last {
			t.Fatalf("results out of priority order: rank %d after %d", r, last)
		}
		last = r
	}
}

func TestCount(t *testing.T) {
	s := testStore(t, 3000, 7)
	rng := simrand.New(8)
	for trial := 0; trial < 100; trial++ {
		q := randomQuery(s.Schema(), rng)
		want := len(naive(s, q, 1<<30))
		if got := s.Count(q); got != want {
			t.Fatalf("Count = %d, want %d", got, want)
		}
	}
}

func TestNewValidates(t *testing.T) {
	sch := testSchema(t)
	if _, err := New(nil, nil); err == nil {
		t.Error("nil schema accepted")
	}
	bad := []dataspace.Tuple{{9, 1, 0, 0}} // C1 outside [1,5]
	if _, err := New(sch, bad); err == nil {
		t.Error("invalid tuple accepted")
	}
}

func TestEmptyStore(t *testing.T) {
	s, err := New(testSchema(t), nil)
	if err != nil {
		t.Fatal(err)
	}
	if s.Size() != 0 {
		t.Fatal("empty store has nonzero size")
	}
	got := s.Select(dataspace.UniverseQuery(s.Schema()), 10)
	if len(got) != 0 {
		t.Fatal("empty store returned tuples")
	}
}

// Property: for random limits, Select never returns more than limit+1
// tuples and never misses a qualifying higher-priority tuple.
func TestSelectLimitProperty(t *testing.T) {
	s := testStore(t, 800, 11)
	rng := simrand.New(12)
	f := func(limRaw uint8) bool {
		limit := int(limRaw % 64)
		q := randomQuery(s.Schema(), rng)
		got := s.Select(q, limit)
		if len(got) > limit+1 {
			return false
		}
		want := naive(s, q, limit+1)
		return len(got) == len(want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
