// The per-shape plan cache.
//
// Every crawl algorithm in this repository issues its queries in a handful
// of shapes: the same attributes bound the same way, only the constants
// changing as the algorithm refines its rectangles. Planning is therefore
// almost always re-deriving a decision already made, so the Store memoizes
// the chosen access path per query *shape* — the per-attribute predicate
// kinds (wildcard, equality, bounded range, point range), never the values.
//
// The shape key packs 2 bits per attribute into a uint64, so any schema of
// up to 32 attributes gets an allocation-free key; wider schemas skip the
// cache and plan every query. Reads are lock-free: the shape→plan map is an
// immutable snapshot behind an atomic pointer, and writers (rare — a
// workload's shape set stabilizes within the first few queries) copy,
// extend and republish it under a mutex. The cache is capped: once
// planCacheCap shapes are resident, new shapes plan on every query rather
// than evicting — a crawl's working set is tiny, and a cap beats an
// eviction policy on the hot path.
//
// A cached plan stores only the structural decision (path kind and the
// attributes it uses); the value-dependent artifacts — which posting list,
// which sorted-segment bounds, which bitmaps — are fetched per query at
// execution time, so a cached plan is correct for every query of its shape.
// Cost-optimality is shape-level by design: the plan is derived from the
// measured selectivities of the first query of the shape, and later queries
// of the same shape reuse it even if their constants are atypical. Every
// access path returns exact results, so this trades only (bounded) time,
// never correctness.
package index

import (
	"sync"
	"sync/atomic"

	"hidb/internal/dataspace"
)

// Per-attribute shape codes, 2 bits each.
const (
	shapeFree  = 0 // categorical wildcard or unbounded numeric range
	shapeEq    = 1 // categorical equality
	shapeRange = 2 // bounded numeric range
	shapePoint = 3 // single-value numeric range (Lo == Hi)
)

// shapeMaxDims is the widest schema the packed shape key covers.
const shapeMaxDims = 32

// shapeKey packs the query's predicate kinds into a uint64. ok is false for
// schemas too wide to pack, in which case the caller plans without caching.
func shapeKey(isCat []bool, preds []dataspace.Pred) (key uint64, ok bool) {
	if len(preds) > shapeMaxDims {
		return 0, false
	}
	for i := range preds {
		p := &preds[i]
		var code uint64
		if isCat[i] {
			if !p.Wild {
				code = shapeEq
			}
		} else if p.Lo != dataspace.NegInf || p.Hi != dataspace.PosInf {
			if p.Lo == p.Hi {
				code = shapePoint
			} else {
				code = shapeRange
			}
		}
		key |= code << (2 * i)
	}
	return key, true
}

// pathKind identifies one access path of the engine.
type pathKind uint8

const (
	pathScan    pathKind = iota // chunked priority-order columnar scan
	pathPosting                 // posting-list walk, optional secondary probe
	pathGallop                  // posting ∩ posting galloping merge
	pathRange                   // sorted-segment enumeration + rank re-sort
	pathBitmap                  // word-parallel bitmap AND
	numPaths
)

// pathNames maps pathKind to the stable names PlanStats reports.
var pathNames = [numPaths]string{"scan", "posting", "gallop", "range", "bitmap"}

// cachedPlan is the value-independent part of a plan: which path, driven by
// which attributes. Immutable once published.
type cachedPlan struct {
	path pathKind
	// primary and secondary are the driving attributes of the posting/range
	// paths; -1 when unused.
	primary, secondary int8
	// bitmapAttrs lists the attributes ANDed on the bitmap path, and
	// bitmapSkip is the same set as a bitmask (coversAtSkip's argument).
	bitmapAttrs []int8
	bitmapSkip  uint64
	// exact marks a bitmap plan whose intersection already enforces every
	// bound predicate: no residual pass, and the intersection may stop at
	// the first limit+1 ranks.
	exact bool
}

// planCacheCap bounds the resident shapes. A variable so tests can disable
// caching (0) to compare cached and uncached planning.
var planCacheCap = 512

// planCache is the lock-free shape→plan cache plus the planner's counters.
type planCache struct {
	// snap holds the current immutable shape→plan snapshot.
	snap atomic.Pointer[map[uint64]*cachedPlan]
	// mu serializes writers; readers never take it.
	mu sync.Mutex

	hits   atomic.Int64
	misses atomic.Int64
	paths  [numPaths]atomic.Int64
}

func newPlanCache() *planCache {
	c := &planCache{}
	m := make(map[uint64]*cachedPlan)
	c.snap.Store(&m)
	return c
}

// get returns the cached plan for the shape, counting a hit or miss.
func (c *planCache) get(key uint64) *cachedPlan {
	if cp, ok := (*c.snap.Load())[key]; ok {
		c.hits.Add(1)
		return cp
	}
	c.misses.Add(1)
	return nil
}

// put publishes a plan for the shape via copy-on-write. Beyond the cap the
// plan is dropped; losing a cache entry only costs re-planning.
func (c *planCache) put(key uint64, cp *cachedPlan) {
	c.mu.Lock()
	defer c.mu.Unlock()
	old := *c.snap.Load()
	if _, ok := old[key]; ok {
		return
	}
	if len(old) >= planCacheCap {
		return
	}
	next := make(map[uint64]*cachedPlan, len(old)+1)
	for k, v := range old {
		next[k] = v
	}
	next[key] = cp
	c.snap.Store(&next)
}

// note counts one execution of the given access path.
func (c *planCache) note(p pathKind) { c.paths[p].Add(1) }

// PlanStats reports the planner's observable behaviour: how many distinct
// query shapes hold cached plans, how often planning was skipped because a
// shape's plan was already cached, and how many times each access path
// actually executed. Counters are cumulative since Store construction.
type PlanStats struct {
	// Shapes is the number of distinct query shapes with a cached plan.
	Shapes int `json:"shapes"`
	// Hits counts Selects that skipped planning via the shape cache.
	Hits int64 `json:"hits"`
	// Misses counts Selects that ran the full planner (including every
	// query on schemas too wide for the packed shape key).
	Misses int64 `json:"misses"`
	// Paths counts Select executions per access path, keyed "scan",
	// "posting", "gallop", "range", "bitmap".
	Paths map[string]int64 `json:"paths,omitempty"`
}

// HitRate returns Hits / (Hits + Misses), 0 when nothing was planned.
func (ps PlanStats) HitRate() float64 {
	total := ps.Hits + ps.Misses
	if total == 0 {
		return 0
	}
	return float64(ps.Hits) / float64(total)
}

// stats snapshots the cache's counters.
func (c *planCache) stats() PlanStats {
	ps := PlanStats{
		Shapes: len(*c.snap.Load()),
		Hits:   c.hits.Load(),
		Misses: c.misses.Load(),
		Paths:  make(map[string]int64, numPaths),
	}
	for i, name := range pathNames {
		if v := c.paths[i].Load(); v != 0 {
			ps.Paths[name] = v
		}
	}
	return ps
}

// Merge accumulates o into ps — the aggregation a partitioned engine
// (Sharded, or a banded disk store) uses to report one planner view over
// its per-partition caches.
func (ps *PlanStats) Merge(o PlanStats) {
	ps.Shapes += o.Shapes
	ps.Hits += o.Hits
	ps.Misses += o.Misses
	if ps.Paths == nil {
		ps.Paths = make(map[string]int64, numPaths)
	}
	for k, v := range o.Paths {
		ps.Paths[k] += v
	}
}
