package hidb_test

import (
	"bytes"
	"context"
	"fmt"
	"log"

	"hidb"
)

// ExampleCrawl shows the shortest path from a hidden database to its full
// content: build a server (or dial a remote one) and call Crawl.
func ExampleCrawl() {
	schema := hidb.MustSchema([]hidb.Attribute{
		{Name: "Body", Kind: hidb.Categorical, DomainSize: 3},
		{Name: "Price", Kind: hidb.Numeric, Min: 0, Max: 100000},
	})
	inventory := hidb.Bag{
		{1, 9500}, {1, 9500}, {2, 4200}, {2, 21000}, {3, 7800},
	}
	srv, err := hidb.NewLocalServer(schema, inventory, 2, 42)
	if err != nil {
		log.Fatal(err)
	}
	res, err := hidb.Crawl(context.Background(), srv, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("tuples:", len(res.Tuples), "complete:", res.Tuples.EqualMultiset(inventory))
	// Output: tuples: 5 complete: true
}

// ExampleNewCrawler runs a specific algorithm from the paper rather than
// the automatically selected one.
func ExampleNewCrawler() {
	schema := hidb.MustSchema([]hidb.Attribute{
		{Name: "State", Kind: hidb.Categorical, DomainSize: 4},
		{Name: "City", Kind: hidb.Categorical, DomainSize: 8},
	})
	var bag hidb.Bag
	for s := int64(1); s <= 4; s++ {
		for c := int64(1); c <= 8; c++ {
			bag = append(bag, hidb.Tuple{s, c})
		}
	}
	srv, err := hidb.NewLocalServer(schema, bag, 4, 7)
	if err != nil {
		log.Fatal(err)
	}
	crawler, err := hidb.NewCrawler("lazy-slice-cover")
	if err != nil {
		log.Fatal(err)
	}
	res, err := crawler.Crawl(context.Background(), srv, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("algorithm:", crawler.Name(), "complete:", res.Tuples.EqualMultiset(bag))
	// Output: algorithm: lazy-slice-cover complete: true
}

// ExampleWithJournal resumes a crawl across query budgets: the first
// session dies on its quota, the journal replays everything already paid
// for, and the second session finishes the job.
func ExampleWithJournal() {
	schema := hidb.MustSchema([]hidb.Attribute{
		{Name: "N", Kind: hidb.Numeric, Min: 0, Max: 1000},
	})
	var bag hidb.Bag
	for v := int64(0); v < 200; v++ {
		bag = append(bag, hidb.Tuple{v * 5})
	}
	jnl := hidb.NewJournal(schema, 8)

	var snapshot bytes.Buffer
	// Session 1: a tight budget interrupts the crawl.
	{
		srv, _ := hidb.NewLocalServer(schema, bag, 8, 42)
		quotaed := quota{inner: srv, budget: 20}
		wrapped, _ := hidb.WithJournal(hidb.BatchedServer(&quotaed), jnl)
		_, err := hidb.Crawl(context.Background(), wrapped, nil)
		fmt.Println("session 1:", err != nil)
		jnl.WriteTo(&snapshot) // persist state between sessions
	}
	// Session 2: a fresh budget plus the journal completes it.
	{
		jnl, _ := hidb.ReadJournal(&snapshot)
		srv, _ := hidb.NewLocalServer(schema, bag, 8, 42)
		wrapped, _ := hidb.WithJournal(srv, jnl)
		res, err := hidb.Crawl(context.Background(), wrapped, nil)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println("session 2 complete:", res.Tuples.EqualMultiset(bag))
	}
	// Output:
	// session 1: true
	// session 2 complete: true
}

// quota is a minimal budget-enforcing wrapper for the example. It
// implements the single-query contract (hidb.SingleServer) and is upgraded
// to the full batched Server with hidb.BatchedServer at the call site.
type quota struct {
	inner  hidb.Server
	budget int
}

func (q *quota) Answer(query hidb.Query) (hidb.QueryResult, error) {
	if q.budget <= 0 {
		return hidb.QueryResult{}, hidb.ErrQuotaExceeded
	}
	q.budget--
	return q.inner.Answer(context.Background(), query)
}
func (q *quota) K() int               { return q.inner.K() }
func (q *quota) Schema() *hidb.Schema { return q.inner.Schema() }

// ExampleCrawlSeq consumes a crawl as a stream: tuples arrive in
// extraction order, and breaking out of the loop cancels the crawl.
func ExampleCrawlSeq() {
	schema := hidb.MustSchema([]hidb.Attribute{
		{Name: "Price", Kind: hidb.Numeric, Min: 0, Max: 10000},
	})
	var bag hidb.Bag
	for v := int64(0); v < 100; v++ {
		bag = append(bag, hidb.Tuple{v * 97})
	}
	srv, _ := hidb.NewLocalServer(schema, bag, 8, 42)

	streamed := 0
	for _, err := range hidb.CrawlSeq(context.Background(), srv, nil) {
		if err != nil {
			log.Fatal(err) // a *hidb.PartialCrawlError carrying the paid cost
		}
		if streamed++; streamed == 10 {
			break // enough: cancels the crawl, no goroutines left behind
		}
	}
	fmt.Println("streamed:", streamed)
	// Output: streamed: 10
}

// ExampleParallelCrawler keeps several queries in flight: same query cost,
// wall-clock divided by the effective parallelism.
func ExampleParallelCrawler() {
	schema := hidb.MustSchema([]hidb.Attribute{
		{Name: "X", Kind: hidb.Numeric, Min: 0, Max: 1 << 20},
	})
	var bag hidb.Bag
	for v := int64(0); v < 500; v++ {
		bag = append(bag, hidb.Tuple{v * 997})
	}
	srv, _ := hidb.NewLocalServer(schema, bag, 16, 42)

	seq, _ := hidb.Crawl(context.Background(), srv, nil)
	par, err := hidb.ParallelCrawler(8).Crawl(context.Background(), srv, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("same cost:", par.Queries == seq.Queries,
		"complete:", par.Tuples.EqualMultiset(bag))
	// Output: same cost: true complete: true
}
