// Awards: crawl the NSF award-search-like workload — a purely categorical
// hidden database with nine attributes whose domain sizes span 5 to 29,042.
// Compares the paper's three categorical algorithms head to head and shows
// why lazy-slice-cover wins (Figure 11), then demonstrates crawling under a
// server-imposed query quota.
//
// Run with:
//
//	go run ./examples/awards
package main

import (
	"context"
	"errors"
	"fmt"
	"log"

	"hidb"
)

func main() {
	ds := hidb.NSFLike(11)
	fmt.Printf("dataset %s: %d awards over %s\n\n", ds.Name, ds.N(), ds.Schema)

	const k = 256
	fmt.Printf("complete crawl at k=%d (ideal n/k = %d queries):\n", k, ds.N()/k)
	for _, name := range []string{"dfs", "slice-cover", "lazy-slice-cover"} {
		crawler, err := hidb.NewCrawler(name)
		if err != nil {
			log.Fatal(err)
		}
		srv, err := hidb.NewLocalServer(ds.Schema, ds.Tuples, k, 42)
		if err != nil {
			log.Fatal(err)
		}
		res, err := crawler.Crawl(context.Background(), srv, nil)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-18s %6d queries (%d resolved, %d overflowed), complete=%v\n",
			name, res.Queries, res.Resolved, res.Overflowed,
			res.Tuples.EqualMultiset(ds.Tuples))
	}
	fmt.Println("\nslice-cover pays Σ Ui ≈ 34k preprocessing queries up front;")
	fmt.Println("the lazy variant issues a slice query only on first need.")

	// A real site would cap queries per IP and per day. The crawler sees
	// ErrQuotaExceeded and can resume after the window resets — the
	// progressiveness property guarantees the tuples gathered so far are
	// proportional to the budget spent.
	srv, err := hidb.NewLocalServer(ds.Schema, ds.Tuples, k, 42)
	if err != nil {
		log.Fatal(err)
	}
	quota := 500
	quotaed := newQuotaServer(srv, quota)
	crawler, err := hidb.NewCrawler("lazy-slice-cover")
	if err != nil {
		log.Fatal(err)
	}
	var got int
	_, err = crawler.Crawl(context.Background(), hidb.BatchedServer(quotaed), &hidb.CrawlOptions{
		OnProgress: func(p hidb.CurvePoint) { got = p.Tuples },
	})
	if errors.Is(err, hidb.ErrQuotaExceeded) {
		fmt.Printf("\nunder a %d-query quota the crawl stops early with ~%d tuples banked\n",
			quota, got)
	} else if err != nil {
		log.Fatal(err)
	}
}

// quotaServer adapts a server to fail after budget queries, like a site's
// per-IP limit. (The library ships the same wrapper as hiddendb.Quota; it
// is re-implemented here to show that a wrapper written against the legacy
// single-query, context-free contract still works: implement SingleServer
// and upgrade it with hidb.BatchedServer, which adds the batch and
// cancellation plumbing.)
type quotaServer struct {
	inner  hidb.Server
	budget int
}

func newQuotaServer(inner hidb.Server, budget int) *quotaServer {
	return &quotaServer{inner: inner, budget: budget}
}

func (q *quotaServer) Answer(query hidb.Query) (hidb.QueryResult, error) {
	if q.budget <= 0 {
		return hidb.QueryResult{}, hidb.ErrQuotaExceeded
	}
	q.budget--
	return q.inner.Answer(context.Background(), query)
}

func (q *quotaServer) K() int               { return q.inner.K() }
func (q *quotaServer) Schema() *hidb.Schema { return q.inner.Schema() }
