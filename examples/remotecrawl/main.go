// Remotecrawl: crawl a hidden database over HTTP, end to end. The example
// starts a hidden-database server on localhost (the census-like workload
// behind a form interface), dials it like any remote site, and runs the
// optimal crawler across the wire — every query is a real HTTP round-trip.
//
// Run with:
//
//	go run ./examples/remotecrawl
package main

import (
	"fmt"
	"log"
	"net"
	"net/http"
	"time"

	"hidb"
)

func main() {
	// Serving side: a census-like hidden database (mixed schema, 45,222
	// tuples), k=1000, behind the library's HTTP handler.
	ds := hidb.AdultLike(11)
	local, err := hidb.NewLocalServer(ds.Schema, ds.Tuples, 1000, 42)
	if err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	server := &http.Server{Handler: hidb.NewHTTPHandler(local, 0)}
	go server.Serve(ln)
	defer server.Close()
	base := "http://" + ln.Addr().String()
	fmt.Printf("serving %s (n=%d, k=%d) at %s\n", ds.Name, ds.N(), local.K(), base)

	// Crawling side: discover the form schema, then extract everything.
	remote, err := hidb.DialHTTP(base, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("discovered schema: %s\n\n", remote.Schema())

	start := time.Now()
	res, err := hidb.Crawl(remote, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("extracted %d tuples in %d HTTP queries (%v)\n",
		len(res.Tuples), res.Queries, time.Since(start).Round(time.Millisecond))
	fmt.Printf("complete: %v\n", res.Tuples.EqualMultiset(ds.Tuples))

	// The remote crawl costs exactly as many queries as an in-process one:
	// the algorithms never depend on where the server lives.
	inproc, err := hidb.Crawl(local, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("in-process reference: %d queries (equal: %v)\n",
		inproc.Queries, inproc.Queries == res.Queries)
}
