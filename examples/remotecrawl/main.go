// Remotecrawl: crawl a hidden database over HTTP, end to end. The example
// starts a per-session hidden-database server on localhost (the census-like
// workload behind a form interface), dials it like any remote site with two
// distinct API tokens, and extracts the database both ways:
//
//   - alice crawls across the wire — every query a real HTTP round trip;
//   - bob asks the server to crawl for him via the streaming /crawl
//     endpoint: one round trip, tuples arriving as NDJSON progress lines.
//
// Each token draws on its own quota and journal, so the two crawls never
// touch each other's budgets — and both pay exactly the paper's query
// cost.
//
// Run with:
//
//	go run ./examples/remotecrawl
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"net/http"
	"time"

	"hidb"
)

func main() {
	// Serving side: a census-like hidden database (mixed schema, 45,222
	// tuples), k=1000, behind the library's per-session HTTP handler —
	// every client token gets its own query budget over the shared store.
	ds := hidb.AdultLike(11)
	local, err := hidb.NewLocalServer(ds.Schema, ds.Tuples, 1000, 42)
	if err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	handler := hidb.NewSessionHTTPHandler(local, hidb.SessionConfig{Quota: 10000})
	server := &http.Server{Handler: handler}
	go server.Serve(ln)
	defer server.Close()
	base := "http://" + ln.Addr().String()
	fmt.Printf("serving %s (n=%d, k=%d) at %s\n", ds.Name, ds.N(), local.K(), base)

	// Client one: alice discovers the form schema and runs the optimal
	// crawler across the wire — every query is an HTTP round trip against
	// her own session's budget.
	ctx := context.Background()
	alice, err := hidb.DialHTTPToken(ctx, base, "alice", nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("discovered schema: %s\n\n", alice.Schema())

	start := time.Now()
	res, err := hidb.Crawl(ctx, alice, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("alice (client-side crawl): %d tuples in %d HTTP queries (%v)\n",
		len(res.Tuples), res.Queries, time.Since(start).Round(time.Millisecond))
	fmt.Printf("complete: %v\n\n", res.Tuples.EqualMultiset(ds.Tuples))

	// Client two: bob hands the work to the server — POST /crawl streams
	// every extracted tuple with his session's paid query count, all in a
	// single round trip. His budget is untouched by alice's crawl.
	bob, err := hidb.DialHTTPToken(ctx, base, "bob", nil)
	if err != nil {
		log.Fatal(err)
	}
	start = time.Now()
	events := 0
	stream, err := bob.Crawl(ctx, "", 0, func(ev hidb.RemoteCrawlEvent) { events++ })
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("bob (streaming /crawl): %d tuples in %d server-side queries (%v, %d stream events)\n",
		len(stream.Tuples), stream.Queries, time.Since(start).Round(time.Millisecond), events)
	fmt.Printf("complete: %v\n\n", stream.Tuples.EqualMultiset(ds.Tuples))

	// Client three: carol consumes the same stream as a Go iterator,
	// hangs up a quarter of the way in — cancelling only her own
	// server-side crawl; everything she paid for is journaled — and then
	// resumes with the skip cursor: the second stream replays her journal
	// for free and delivers only the tuples she has not seen.
	carol, err := hidb.DialHTTPToken(ctx, base, "carol", nil)
	if err != nil {
		log.Fatal(err)
	}
	var head hidb.Bag
	cutoff := ds.N() / 4
	for t, err := range carol.CrawlSeq(ctx, "", 0) {
		if err != nil {
			log.Fatal(err)
		}
		head = append(head, t)
		if len(head) == cutoff {
			break // tears down the stream; the server cancels carol's crawl
		}
	}
	rest, err := carol.Crawl(ctx, "", len(head), nil)
	if err != nil {
		log.Fatal(err)
	}
	combined := append(head, rest.Tuples...)
	fmt.Printf("carol (CrawlSeq + resume cursor): broke off after %d tuples, resumed %d more in %d total queries\n",
		cutoff, len(rest.Tuples), rest.Queries)
	fmt.Printf("complete: %v\n\n", combined.EqualMultiset(ds.Tuples))

	// Both clients paid exactly the in-process reference cost: the
	// algorithms never depend on where the server lives — or on who else
	// is crawling it.
	inproc, err := hidb.Crawl(ctx, local, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("in-process reference: %d queries (alice equal: %v, bob equal: %v)\n",
		inproc.Queries, inproc.Queries == res.Queries, inproc.Queries == stream.Queries)
}
