// Quickstart: define a search form's schema, stand up a hidden database
// behind it, and extract every tuple with the paper's optimal algorithm.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"hidb"
)

func main() {
	// A tiny used-car site: the search form has one categorical menu and
	// two numeric range fields. Categorical attributes come first.
	schema := hidb.MustSchema([]hidb.Attribute{
		{Name: "Body-style", Kind: hidb.Categorical, DomainSize: 3},
		{Name: "Year", Kind: hidb.Numeric, Min: 2000, Max: 2012},
		{Name: "Price", Kind: hidb.Numeric, Min: 500, Max: 50000},
	})

	// The site's inventory. Note the duplicate listing — hidden databases
	// are bags, and the crawler must recover multiplicities too.
	inventory := hidb.Bag{
		{1, 2009, 9500},
		{1, 2009, 9500}, // same car listed twice
		{1, 2011, 14300},
		{2, 2005, 4200},
		{2, 2012, 21000},
		{3, 2008, 7800},
		{3, 2010, 12650},
		{3, 2012, 30500},
	}

	// The server returns at most k=2 tuples per query, so a single broad
	// query cannot dump the database — the crawler has to be clever.
	srv, err := hidb.NewLocalServer(schema, inventory, 2, 42)
	if err != nil {
		log.Fatal(err)
	}

	// Crawl picks the right algorithm for the schema (hybrid here, since
	// the space mixes categorical and numeric attributes).
	res, err := hidb.Crawl(context.Background(), srv, nil)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("extracted %d tuples with %d queries (k=%d)\n",
		len(res.Tuples), res.Queries, srv.K())
	fmt.Printf("complete: %v\n", res.Tuples.EqualMultiset(inventory))
	for _, t := range res.Tuples.Clone().SortCanonical() {
		fmt.Println(" ", t)
	}
}
