// Autos: crawl the Yahoo! Autos-like workload — the scenario that motivates
// the paper's introduction (Figure 1). Demonstrates:
//
//   - the k-dependence of the crawl cost (Figure 12's sweep);
//   - unsolvability detection when k is below the duplicate count (§1.1);
//   - the §1.3 attribute-dependency heuristic (skip make × body-style
//     combinations that cannot exist), which can only reduce the cost;
//   - near-linear progressiveness (Figure 13).
//
// Run with:
//
//	go run ./examples/autos
package main

import (
	"context"
	"errors"
	"fmt"
	"log"

	"hidb"
)

func main() {
	ds := hidb.YahooLike(11)
	fmt.Printf("dataset %s: %d listings over %s\n\n", ds.Name, ds.N(), ds.Schema)

	// Cost vs k. At k=64 the dataset is unextractable: one dealer listed
	// the same car more than 64 times, and an overflowing point query can
	// never be completed (§1.1) — exactly the gap in the paper's Figure 12.
	fmt.Println("cost of a complete crawl vs the server's return limit k:")
	for _, k := range []int{64, 128, 256, 512, 1024} {
		srv, err := hidb.NewLocalServer(ds.Schema, ds.Tuples, k, 42)
		if err != nil {
			log.Fatal(err)
		}
		res, err := hidb.Crawl(context.Background(), srv, nil)
		if errors.Is(err, hidb.ErrUnsolvable) {
			fmt.Printf("  k=%-5d unsolvable (a point holds >%d duplicates)\n", k, k)
			continue
		}
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  k=%-5d %5d queries for %d tuples (ideal n/k = %d)\n",
			k, res.Queries, len(res.Tuples), ds.N()/k)
	}

	// The dependency heuristic: a crawler that knows which makes sell
	// which body styles skips queries covering impossible combinations.
	srv, err := hidb.NewLocalServer(ds.Schema, ds.Tuples, 256, 42)
	if err != nil {
		log.Fatal(err)
	}
	valid := make(map[[2]int64]bool)
	for _, t := range ds.Tuples {
		valid[[2]int64{t[1], t[2]}] = true // (body-style, make) seen in data
	}
	filter := func(q hidb.Query) bool {
		b, m := q.Pred(1), q.Pred(2)
		if b.Wild || m.Wild {
			return true
		}
		return valid[[2]int64{b.Value, m.Value}]
	}
	res, err := hidb.Crawl(context.Background(), srv, &hidb.CrawlOptions{QueryFilter: filter, CollectCurve: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nwith make×body-style dependency knowledge (k=256): %d queries, %d skipped\n",
		res.Queries, res.Skipped)
	fmt.Printf("complete: %v\n", res.Tuples.EqualMultiset(ds.Tuples))

	// Progressiveness: tuples arrive steadily, so the crawl can be
	// stopped at any budget and still have proportionate coverage.
	fmt.Println("\nprogressiveness (% of tuples after each 10% of queries):")
	total := res.Queries
	final := len(res.Tuples)
	decile := 1
	for _, p := range res.Curve {
		for decile <= 10 && p.Queries*10 >= total*decile {
			fmt.Printf("  %3d%% of queries -> %3d%% of tuples\n",
				decile*10, p.Tuples*100/final)
			decile++
		}
	}
}
