// Package hidb is a library for crawling hidden web databases — datasets
// reachable only through a form-based search interface that returns at most
// k tuples per query plus an overflow signal. It implements the provably
// optimal algorithms of Sheng, Zhang, Tao and Jin, "Optimal Algorithms for
// Crawling a Hidden Database in the Web" (PVLDB 5(11), 2012):
//
//   - rank-shrink for numeric search forms — O(d·n/k) queries;
//   - slice-cover / lazy-slice-cover for categorical forms;
//   - hybrid for mixed forms;
//
// together with the paper's baselines (binary-shrink, DFS), a conforming
// hidden-database server simulator, an HTTP server/client pair for crawling
// over the wire, synthetic workload generators, and the full experiment
// harness reproducing the paper's evaluation.
//
// # Quick start
//
//	schema := hidb.MustSchema([]hidb.Attribute{
//		{Name: "Make", Kind: hidb.Categorical, DomainSize: 85},
//		{Name: "Price", Kind: hidb.Numeric, Min: 200, Max: 250000},
//	})
//	srv, _ := hidb.NewLocalServer(schema, tuples, 1000, 42)
//	res, err := hidb.Crawl(ctx, srv, nil) // picks the paper's optimal algorithm
//	// res.Tuples is the complete database; res.Queries the cost.
//
// Every entry point takes a context.Context first: cancel it and the crawl
// stops between queries (a journaled crawl resumes later, paying only for
// what never ran), give it a deadline and every remote round trip is
// bounded. Callers that do not need cancellation pass context.Background().
//
// For incremental consumption, CrawlSeq streams the same extraction as a
// Go iterator instead of buffering the bag:
//
//	for t, err := range hidb.CrawlSeq(ctx, srv, nil) {
//		if err != nil {
//			var pe *hidb.PartialCrawlError // carries the cost already paid
//			// errors.As(err, &pe); resume later via a journal.
//			break
//		}
//		consume(t) // tuples arrive in extraction order; break cancels
//	}
//
// To crawl a remote hidden database, expose it with NewHTTPHandler on the
// serving side and DialHTTP on the crawling side; every algorithm runs
// unmodified against the remote connection. RemoteClient.CrawlSeq is the
// wire form of CrawlSeq — the server runs the algorithm and streams the
// tuples — with a resume cursor for reconnecting after a broken stream.
//
// # Batched serving
//
// Server carries a batched entry point, AnswerBatch, with one invariant: a
// batch is answered exactly as if its queries were issued sequentially
// through Answer, so the query count — the paper's cost metric — never
// depends on how queries are packed, while B batched queries cost a single
// round trip (one POST /batch over HTTP, one delay under a latency model,
// one fan-out over a sharded store). Cancellation obeys the same
// invariant from the other side: a cancelled batch ends at an answered
// prefix, and a query cut off by ctx was never served, never charged.
// ParallelCrawler drains its ready queries into such batches
// automatically, and pipelines them: up to CrawlOptions.InFlight round
// trips (default 2, the double buffer; hidb-crawl's -inflight flag) fly
// at once, the next batch departing the moment a flight slot frees, so a
// high-latency connection never idles between round trips. Custom
// wrappers written against the pre-context single-query contract still
// work: upgrade them with BatchedServer. For serving many concurrent
// crawls from one process, NewShardedLocalServer partitions the store
// into priority-range shards that answer batches in parallel, each with
// its own scratch memory.
//
// # The engine
//
// Behind every local server sits a read-only columnar store with four access
// paths: a chunked full scan with early exit, sorted per-value posting lists
// (merged pairwise, or galloped when one list is far shorter), binary-search
// rank ranges for numeric predicates, and — for low-cardinality categorical
// attributes — compressed per-value bitmap indexes over the priority ranks,
// so a multi-attribute equality conjunction is answered by a word-parallel
// AND instead of a posting-list walk. The planner chooses among them with a
// cost model fed by selectivities measured on a sample of the actual data at
// construction (not assumed from domain sizes), and memoizes the chosen plan
// per query shape — the attribute/predicate-kind pattern, not the constants —
// in a lock-free cache, so a crawl that issues thousands of structurally
// identical queries plans once and executes thereafter. All paths return
// bit-identical answers; planning changes speed, never responses, so the
// paper's query counts are untouched. LocalServer.PlanStats exposes the
// planner's counters (cached shapes, hit rate, per-path execution counts),
// and a session server reports them on GET /stats.
//
// # On-disk stores
//
// The same engine contract has a second, disk-resident implementation for
// datasets larger than RAM. BuildDisk streams tuples in rank order — an
// iterator, never a materialized bag — into an immutable columnar store
// file: per-attribute column segments, per-band posting-list and
// sorted-projection indexes, and a checksummed footer carrying the schema
// and the planner's selectivity sample. OpenDisk maps the file read-only
// and serves Select/Count straight off the mapped pages through a small
// cache of materialized hot blocks, so serving a 10M-tuple store costs
// megabytes of heap, not gigabytes. NewDiskLocalServer wraps the opened
// store as a LocalServer; everything stacked on a local server — sessions,
// journals, the shared cache, the HTTP handler — runs unchanged on top.
//
//	_ = hidb.BuildDisk(path, schema, rows, hidb.DiskBuildOptions{Bands: 8})
//	store, _ := hidb.OpenDisk(path, hidb.DiskOpenOptions{})
//	defer store.Close()
//	srv, _ := hidb.NewDiskLocalServer(store, 1000)
//
// Responses are bit-identical to the in-memory engine's: the store is laid
// out in the same priority order (build from RankOrder(tuples, seed) to
// match NewLocalServer's permutation), the persisted sample reproduces the
// in-memory planner's selectivity estimates exactly, and the per-band
// partition mirrors the sharded store's — so plans, answers and the
// paper's query counts are all unchanged by the engine swap.
//
// Builds are crash-safe the same way journals are (write temp, fsync,
// rename): a crash mid-build leaves no partial file at the target path.
// Opening validates the footer's checksum and structure; a torn or
// bit-flipped file is quarantined as path+".corrupt" and reported as a
// *DiskCorruptionError. DiskOpenOptions.Verify (or the store's Verify
// method) additionally re-checksums every data segment — worth paying at
// startup for long-lived servers. Pick the disk engine when the dataset
// dwarfs RAM or a prebuilt store should outlive the process; pick the
// in-memory engine for anything that fits — steady-state it is faster by
// a small constant factor, with no build step.
//
// # Simulation and fault injection
//
// Two deterministic test harnesses ship with the library. NewSimClock /
// NewSimLatencyServer simulate per-round-trip network latency on a
// virtual clock: the clock advances only when the simulated crawl is
// quiescent, so a crawl's wall-clock behaviour under any latency is a
// reproducible measurement (clock.Now() after the crawl) that costs
// microseconds of real time — give ParallelCrawler the same clock via
// CrawlOptions.Clock. NewFlakyServer injects seeded transient errors,
// nth-query failures and ctx-abort windows in front of any Server, for
// testing that crawls resume correctly and budgets stay consistent under
// real-world failure.
//
// # Resilience
//
// The remote stack is built to survive hostile networks and server
// restarts without ever distorting the paper's cost metric. DialHTTPRetry
// arms the client with a RetryPolicy: transient failures — 5xx answers,
// refused or reset connections, lost responses, per-attempt timeouts — are
// retried with capped exponential backoff and seeded jitter, honouring the
// server's Retry-After; protocol answers (a quota rejection, a malformed
// query) are never retried. A severed /crawl stream resumes automatically
// from the tuple after the last one delivered, so reconnects neither
// duplicate nor lose tuples. None of this double-charges the client: a
// per-session server journals every paid answer, so a retried query or a
// resumed crawl replays the journaled prefix for free, and the paid query
// count comes out identical to a fault-free run. When retries are
// exhausted (or a retry budget runs dry) the failure surfaces as a
// *TransportError. On the serving side the handler sheds overload rather
// than degrading — 503 + Retry-After beyond a concurrency bound, new
// tokens turned away when the session table is full — and Drain plus a
// not-ready /healthz give restarts a clean exit: in-flight work finishes,
// journals persist, and a reconnecting client resumes where it left off.
// Session journals persist crash-safely (write-temp-then-rename, per-record
// checksums); a file torn by a crash mid-persist recovers its longest valid
// prefix, so at most the unflushed tail is ever re-paid.
//
// # Fleet mode
//
// The paper's cost model is per-client, so M clients crawling the same
// hidden store pay M times for identical knowledge. Fleet mode —
// SessionConfig.SharedCache, or hidb-server's -shared-cache flag — adds
// one shared answer tier under every session's private stack: the first
// token to issue a query leads (pays through its own quota and counter,
// populates the tier) while concurrent askers of the same query block on
// the in-flight fetch and read the leader's answer without re-issuing it.
// Because the single-flight is per query, a follower crawling alongside a
// leader streams the still-growing extraction incrementally — it waits at
// most one query's latency at a time, never for the whole crawl.
//
// What a shared answer costs the asker is the policy: under
// SharedCacheFree, hits and waits bypass the asker's quota and counter
// entirely — M crawlers of one store at ~1x total paid cost; under
// SharedCacheCharged, the tier sits below the counter, so a hit saves the
// store's work but is still counted and debited, preserving the paper's
// per-client accounting. The default SharedCacheOff builds exactly the
// per-session stack documented above — paper-mode costs, bit for bit.
//
// Resume behaviour is unchanged in every mode: each session's journal
// records the answers that session saw (however they were obtained), so a
// follower that disconnects replays its own journal for free and re-reads
// anything else from the shared tier. Failure is safe by construction — a
// leader whose crawl is cancelled, whose budget runs dry, or whose session
// is evicted mid-fetch hands leadership to a waiting follower (which pays
// on its own budget) instead of orphaning it, and eviction never discards
// the tier: answers any token led keep serving the fleet.
//
// # Observability & load
//
// The HTTP server self-reports on three admission-free endpoints — they
// answer even while the handler drains or sheds, because a saturated
// server is exactly the one worth watching. GET /stats is the JSON
// snapshot (totals, per-session counters, engine and planner internals);
// GET /metrics is the same state in the Prometheus text exposition —
// hidb_requests_total, hidb_queries_total, hidb_shed_total by reason
// (capacity, draining, session_table_full), hidb_quota_rejected_total,
// the hidb_batch_width histogram, per-rate-class session gauges and the
// plan-cache/engine counters — ready for any Prometheus-compatible
// scraper with no client library involved. GET /healthz distinguishes
// liveness from readiness: a draining handler answers 503 with
// ready=false so load balancers rotate it out while in-flight work
// finishes.
//
// QoS knobs shape who gets served when, never what anything costs:
// hidb-server's repeatable -rate-class flag (-rate-class gold=50:100
// -rate-class free=2) names per-token qps tiers resolved from the token's
// prefix before the first '-', falling back to the flat -rate-per-second;
// sheds carry Retry-After hints sized to the cause (1s for transient
// capacity, 30s for a one-way drain). The paid query count — the paper's
// cost metric — is identical with every knob on or off.
//
// Command hidb-loadgen drives mixed virtual-session traffic (form
// queries, batches, crawls with mid-stream aborts and resumes, unseen
// tokens against a full table) at the server and emits a benchjson-shaped
// latency/shed/quota artifact. Its sim mode runs under the virtual clock:
// thousands of sessions in milliseconds of real time, every percentile
// and shed count bit-reproducible from the seed, so two artifacts diff
// meaningfully.
package hidb

import (
	"context"
	"io"
	"iter"
	"net/http"
	"time"

	"hidb/internal/core"
	"hidb/internal/datagen"
	"hidb/internal/dataspace"
	"hidb/internal/diskstore"
	"hidb/internal/hiddendb"
	"hidb/internal/httpclient"
	"hidb/internal/httpserver"
	"hidb/internal/index"
	"hidb/internal/journal"
	"hidb/internal/parallel"
	"hidb/internal/session"
	"hidb/internal/wire"
)

// Core data-space types. See the dataspace package for full documentation.
type (
	// Schema is an ordered list of attributes defining a data space.
	Schema = dataspace.Schema
	// Attribute describes one dimension of the data space.
	Attribute = dataspace.Attribute
	// Kind distinguishes numeric from categorical attributes.
	Kind = dataspace.Kind
	// Tuple is one row of the hidden database.
	Tuple = dataspace.Tuple
	// Bag is a multiset of tuples.
	Bag = dataspace.Bag
	// Query is a form query: one predicate per attribute.
	Query = dataspace.Query
	// Pred is a single-attribute predicate.
	Pred = dataspace.Pred
)

// Attribute kinds.
const (
	// Numeric attributes accept range predicates.
	Numeric = dataspace.Numeric
	// Categorical attributes accept equality-or-wildcard predicates.
	Categorical = dataspace.Categorical
)

// Server-side types. See the hiddendb package.
type (
	// Server is the query interface of a hidden database: single queries
	// via Answer(ctx, q), batches via AnswerBatch(ctx, qs) (a batch is
	// answered as if issued sequentially; a cancelled ctx ends it at an
	// answered prefix).
	Server = hiddendb.Server
	// SingleServer is the legacy pre-context, pre-batching server
	// contract (Answer(q)/K/Schema only); upgrade implementations with
	// BatchedServer.
	SingleServer = hiddendb.Single
	// QueryResult is a server's response to one query.
	QueryResult = hiddendb.Result
	// LocalServer is an in-process hidden database.
	LocalServer = hiddendb.Local
	// PlannerStats is a local store's query-planner introspection: cached
	// plan shapes, plan-cache hits and misses, and per-access-path execution
	// counts (see LocalServer.PlanStats and the package doc's engine
	// section).
	PlannerStats = index.PlanStats
)

// BatchedServer upgrades a legacy single-query server implementation to
// the full batched, context-aware Server contract: AnswerBatch loops over
// Answer — which trivially preserves the batch-equals-sequential
// semantics — and the ctx is checked before every inner call, so even a
// context-oblivious implementation cancels between queries.
func BatchedServer(s SingleServer) Server { return hiddendb.Batched(s) }

// NewRateLimitedServer wraps srv with a token-bucket rate limit: at most
// perSecond queries per second sustained, bursts of up to burst after idle
// periods (values below 1 are raised to 1). Waiting respects the query's
// ctx, so throttled crawls cancel promptly. Rate limiting delays queries;
// it never changes their responses or count.
func NewRateLimitedServer(srv Server, perSecond float64, burst int) (Server, error) {
	return hiddendb.NewRateLimited(srv, perSecond, burst)
}

// Crawler-side types. See the core package.
type (
	// Crawler is a complete-extraction algorithm.
	Crawler = core.Crawler
	// CrawlResult is the outcome of a crawl: the full bag plus the cost.
	CrawlResult = core.Result
	// CrawlOptions tunes a crawl (progress callbacks, §1.3 dependency
	// filter, progressiveness curve collection).
	CrawlOptions = core.Options
	// CurvePoint is one sample of the progressiveness curve.
	CurvePoint = core.CurvePoint
)

// InFlightAdaptive, as CrawlOptions.InFlight, lets the pipelined
// dispatcher choose its own depth: it widens by one whenever a full-width
// batch is ready while every flight slot is busy — each widening saves
// that batch a round trip of latency — and stops when that signal stops.
// Partial batches never ride the widened slots, so neither the paid query
// count nor the round-trip count ever exceeds a fixed depth's.
const InFlightAdaptive = core.InFlightAdaptive

// Dataset bundles a schema with a bag of tuples (see datagen).
type Dataset = datagen.Dataset

// Errors.
var (
	// ErrUnsolvable reports that some point holds more than k duplicate
	// tuples, making complete extraction impossible (§1.1 of the paper).
	ErrUnsolvable = core.ErrUnsolvable
	// ErrWrongSpace reports an algorithm applied to an unsupported space.
	ErrWrongSpace = core.ErrWrongSpace
	// ErrQuotaExceeded reports an exhausted server query budget.
	ErrQuotaExceeded = hiddendb.ErrQuotaExceeded
)

// NewSchema validates the attribute list and returns a schema. Categorical
// attributes must precede numeric ones, matching the paper's convention.
func NewSchema(attrs []Attribute) (*Schema, error) { return dataspace.NewSchema(attrs) }

// MustSchema is NewSchema that panics on error.
func MustSchema(attrs []Attribute) *Schema { return dataspace.MustSchema(attrs) }

// UniverseQuery returns the query covering the whole data space.
func UniverseQuery(s *Schema) Query { return dataspace.UniverseQuery(s) }

// NewQuery builds a query from explicit predicates.
func NewQuery(s *Schema, preds []Pred) (Query, error) { return dataspace.NewQuery(s, preds) }

// NewLocalServer builds an in-process hidden database over the bag with
// return limit k. The seed fixes the tuple-priority permutation, so equal
// seeds give bit-identical servers.
func NewLocalServer(schema *Schema, tuples Bag, k int, seed uint64) (*LocalServer, error) {
	return hiddendb.NewLocal(schema, tuples, k, seed)
}

// NewShardedLocalServer builds an in-process hidden database whose store is
// partitioned into the given number of priority-range shards. Responses are
// bit-identical to NewLocalServer with the same (tuples, k, seed) —
// sharding changes only how batches execute: AnswerBatch fans out across
// the shards in parallel, each shard with its own scratch memory, so one
// process can serve many concurrent crawls without contention.
func NewShardedLocalServer(schema *Schema, tuples Bag, k int, seed uint64, shards int) (*LocalServer, error) {
	return hiddendb.NewLocalSharded(schema, tuples, k, seed, shards)
}

// NewCrawler returns the algorithm with the given paper name: one of
// "binary-shrink", "rank-shrink", "dfs", "slice-cover", "lazy-slice-cover"
// or "hybrid".
func NewCrawler(name string) (Crawler, error) { return core.ByName(name) }

// CrawlerNames lists the available algorithm names.
func CrawlerNames() []string { return core.Names() }

// BestCrawler returns the paper's recommended algorithm for the schema:
// rank-shrink (numeric), lazy-slice-cover (categorical) or hybrid (mixed).
func BestCrawler(s *Schema) Crawler { return core.ForSchema(s) }

// Crawl extracts the entire hidden database behind srv using the paper's
// recommended algorithm for the server's schema. Cancelling ctx stops the
// crawl between queries with the ctx's error; with a live ctx the query
// count is exactly the algorithm's.
func Crawl(ctx context.Context, srv Server, opts *CrawlOptions) (*CrawlResult, error) {
	return core.ForSchema(srv.Schema()).Crawl(ctx, srv, opts)
}

// PartialCrawlError is the terminal error of a CrawlSeq stream: the
// underlying failure (inspect with errors.Is/As — e.g. ErrQuotaExceeded or
// the ctx's cancellation error) plus Queries, the cost already paid when
// the crawl stopped. The tuples yielded before it are a valid prefix of
// the extraction.
type PartialCrawlError = core.PartialError

// CrawlSeq is the streaming form of Crawl: it extracts the database with
// the paper's recommended algorithm and yields every tuple as it is
// retrieved, in exactly the order (and number) Crawl's Result.Tuples would
// hold. Breaking out of the range loop cancels the crawl and waits for it
// to wind down; a crawl that cannot finish yields one final (nil,
// *PartialCrawlError) pair. Streaming is delivery, not a different
// algorithm: consuming the whole stream costs exactly Crawl's query
// count.
func CrawlSeq(ctx context.Context, srv Server, opts *CrawlOptions) iter.Seq2[Tuple, error] {
	return core.CrawlSeq(ctx, core.ForSchema(srv.Schema()), srv, opts)
}

// NewHTTPHandler exposes a Server over HTTP (GET /schema, POST /query,
// POST /batch — B queries for one round trip, answered as if sequential).
// A positive quota caps the number of queries served (batches count per
// query, not per request), mirroring per-IP limits of real sites; zero
// means unlimited.
func NewHTTPHandler(srv Server, quota int) http.Handler {
	if quota > 0 {
		return httpserver.New(srv, httpserver.WithQuota(quota))
	}
	return httpserver.New(srv)
}

// SessionConfig tunes per-client HTTP sessions: each API token's query
// budget, its sustained queries-per-second rate limit, the TTL of the
// budget window, the live-session cap, the directory journals persist
// to across evictions, and the fleet-wide shared answer cache (see the
// session package and the package doc's fleet-mode section).
type SessionConfig = session.Config

// SharedCachePolicy selects whether and how a session table's fleet-wide
// shared answer tier participates in each session's stack (see the
// package doc's fleet-mode section).
type SharedCachePolicy = hiddendb.SharedCachePolicy

// Shared-cache policies.
const (
	// SharedCacheOff is paper mode (the default): no shared tier, every
	// client pays its full query count, accounting bit-identical.
	SharedCacheOff = hiddendb.SharedOff
	// SharedCacheFree serves shared hits free of the asker's quota and
	// counter: only the leading token pays the store.
	SharedCacheFree = hiddendb.SharedFree
	// SharedCacheCharged serves shared hits from the cache but still
	// debits the asker, preserving the paper's per-client accounting.
	SharedCacheCharged = hiddendb.SharedCharged
)

// ParseSharedCachePolicy parses "off", "free" or "charged" — the
// spellings of hidb-server's -shared-cache flag.
func ParseSharedCachePolicy(s string) (SharedCachePolicy, error) {
	return hiddendb.ParseSharedCachePolicy(s)
}

// NewSessionHTTPHandler exposes a Server over HTTP with per-client
// sessions: every request resolves through the caller's token-keyed
// session (Authorization: Bearer), so quotas, journals and query counters
// are per-client, GET /stats reports them, and POST /crawl streams a
// server-side crawl of the caller's session as NDJSON.
func NewSessionHTTPHandler(srv Server, cfg SessionConfig) http.Handler {
	return httpserver.New(srv, httpserver.WithSessions(cfg))
}

// DialHTTP connects to a remote hidden database served by NewHTTPHandler
// and returns it as a Server every algorithm can crawl. The ctx bounds the
// initial schema fetch; every later round trip carries its own. A nil
// httpClient uses http.DefaultClient.
func DialHTTP(ctx context.Context, baseURL string, httpClient *http.Client) (Server, error) {
	return httpclient.Dial(ctx, baseURL, httpClient)
}

// RemoteClient is the concrete HTTP client: a Server (Answer/AnswerBatch
// round trips under the caller's ctx) that can also consume the
// server-side streaming /crawl endpoint via its Crawl and CrawlSeq
// methods, including the resume cursor for reconnecting mid-extraction.
type RemoteClient = httpclient.Client

// RemoteCrawlEvent is one NDJSON line of the /crawl progress stream.
type RemoteCrawlEvent = wire.CrawlEvent

// RemoteCrawlResult is the outcome of a server-side streaming crawl.
type RemoteCrawlResult = httpclient.CrawlResult

// DialHTTPToken connects like DialHTTP but identifies the client with an
// API token (sent as "Authorization: Bearer" on every request): against a
// per-session server, quota, journal and query counters are then private
// to this client. The concrete client is returned so its Crawl and
// CrawlSeq methods — the streaming server-side crawl — are reachable.
func DialHTTPToken(ctx context.Context, baseURL, token string, httpClient *http.Client) (*RemoteClient, error) {
	return httpclient.DialToken(ctx, baseURL, token, httpClient)
}

// RetryPolicy tunes the fault-tolerant transport of DialHTTPRetry: attempt
// cap, backoff shape, seeded jitter, per-attempt timeout, and an optional
// cross-call retry budget that brakes retry storms. The zero value gives
// sensible defaults.
type RetryPolicy = httpclient.RetryPolicy

// TransportError reports a remote operation that failed even after the
// policy's retries (or whose retry budget ran dry). Unwrap yields the last
// attempt's error.
type TransportError = httpclient.TransportError

// DialHTTPRetry connects like DialHTTPToken and arms the client with a
// retrying transport: transient failures (5xx answers, transport errors,
// per-attempt timeouts) back off and retry under policy, severed /crawl
// streams resume from the tuple after the last one delivered, and — against
// a per-session server, which journals every paid answer — none of it
// double-charges: replays are free, so the paid query count matches a
// fault-free run. Protocol answers (quota exceeded, bad request) are never
// retried. Failures that outlive the policy surface as *TransportError.
func DialHTTPRetry(ctx context.Context, baseURL, token string, httpClient *http.Client, policy RetryPolicy) (*RemoteClient, error) {
	return httpclient.DialRetry(ctx, baseURL, token, httpClient, policy)
}

// ParallelCrawler returns a crawler that drains ready queries into
// AnswerBatch round trips of up to workers queries each (tunable via
// CrawlOptions.BatchSize) and keeps up to CrawlOptions.InFlight round
// trips (default 2) in flight at once: while round trips fly, the next
// batch accumulates and departs the moment a flight slot frees, so the
// connection never idles between round trips. The set of issued queries —
// and therefore the paper's cost metric — is identical to the sequential
// algorithms'; only wall-clock time and the round-trip count change. Use
// it when each round trip has real network cost. OnProgress and
// QueryFilter callbacks must be safe for concurrent invocation.
func ParallelCrawler(workers int) Crawler { return parallel.Crawler{Workers: workers} }

// Deterministic simulation and fault injection. See the hiddendb package
// for the full documentation of each type.
type (
	// SimClock is a deterministic virtual clock for latency simulation:
	// round trips cost virtual time that advances only when the simulated
	// crawl is quiescent, so the same crawl always measures the same
	// elapsed time, in microseconds of real time. Use one clock per crawl.
	SimClock = hiddendb.SimClock
	// SimLatencyServer charges a fixed virtual delay per round trip on a
	// SimClock — the deterministic counterpart of a real network latency.
	SimLatencyServer = hiddendb.SimLatency
	// FlakyServer injects deterministic, seeded faults (transient errors,
	// nth-query failures, ctx-abort windows) in front of a Server, for
	// testing crawl resumption and budget accounting under failure.
	FlakyServer = hiddendb.Flaky
	// FlakyServerConfig selects the faults a FlakyServer injects.
	FlakyServerConfig = hiddendb.FlakyConfig
)

// ErrInjectedFault is the transient error a FlakyServer injects.
var ErrInjectedFault = hiddendb.ErrInjected

// NewSimClock returns a virtual clock at time zero.
func NewSimClock() *SimClock { return hiddendb.NewSimClock() }

// NewSimLatencyServer wraps srv so every round trip — one Answer or one
// whole AnswerBatch — costs delay of virtual time on clock. A sequential
// crawl drives the clock by itself; for ParallelCrawler, pass the same
// clock in CrawlOptions.Clock so the pipelined dispatcher can keep the
// clock's runnable-work accounting. After the crawl, clock.Now() is its
// deterministic virtual wall-clock time — how the parallel latency
// ablation measures pipeline speedups reproducibly without sleeping.
func NewSimLatencyServer(srv Server, delay time.Duration, clock *SimClock) *SimLatencyServer {
	return hiddendb.NewSimLatency(srv, delay, clock)
}

// NewFlakyServer wraps srv with deterministic fault injection per cfg.
// Faults follow the answered-prefix contract: a batch cut short by a fault
// still delivers (and pays for) the queries answered before it, so
// journals, quotas and counters stay consistent — which is exactly what
// the wrapper exists to let tests verify.
func NewFlakyServer(srv Server, cfg FlakyServerConfig) *FlakyServer {
	return hiddendb.NewFlaky(srv, cfg)
}

// Journal is a replayable log of server responses that makes crawls
// resumable across query quotas (see the journal package).
type Journal = journal.Journal

// NewJournal creates an empty journal for a server with the given schema
// and return limit.
func NewJournal(schema *Schema, k int) *Journal { return journal.New(schema, k) }

// ReadJournal deserializes a journal written with Journal.WriteTo. A torn
// or corrupted stream recovers its longest valid prefix: the journal is
// returned alongside a *JournalCorruptionError (errors.As) instead of
// being discarded — only the damaged tail's queries must be re-paid.
func ReadJournal(r io.Reader) (*Journal, error) { return journal.ReadFrom(r) }

// JournalCorruptionError reports a torn or corrupted journal. The journal
// returned with it holds the longest valid prefix and is safe to use.
type JournalCorruptionError = journal.CorruptionError

// SaveJournalFile persists a journal crash-safely: write to a temp file in
// the target directory, fsync, rename over the final path. A crash at any
// instant leaves either the old or the new complete journal, never a torn
// mix.
func SaveJournalFile(path string, j *Journal) error { return journal.SaveFile(path, j) }

// LoadJournalFile reads a journal persisted with SaveJournalFile. Damaged
// files are recovered to their longest valid prefix, the original
// quarantined as path+".corrupt", and the recovery reported via a
// *JournalCorruptionError alongside the (usable) journal. A missing file's
// error wraps fs.ErrNotExist.
func LoadJournalFile(path string) (*Journal, error) { return journal.LoadFile(path) }

// WithJournal wraps a server so that journaled queries are answered from
// the log at zero cost and new responses are recorded. Re-running a crawl
// with the same journal fast-forwards through everything already paid for —
// the way to finish a crawl across several per-IP query budgets.
func WithJournal(srv Server, j *Journal) (Server, error) { return journal.Wrap(srv, j) }

// On-disk store types. See the diskstore package and the package doc's
// on-disk section.
type (
	// DiskStore is an opened disk-resident columnar store: an Engine
	// serving Select/Count off mapped file pages. Close it when done.
	DiskStore = diskstore.Store
	// DiskBuildOptions tunes BuildDisk (the priority-range band count).
	DiskBuildOptions = diskstore.BuildOptions
	// DiskOpenOptions tunes OpenDisk (block-cache size, full-file verify).
	DiskOpenOptions = diskstore.OpenOptions
	// DiskCorruptionError reports a torn or bit-flipped store file; the
	// damaged file is quarantined as path+".corrupt".
	DiskCorruptionError = diskstore.CorruptionError
	// EngineStats identifies a server's engine ("mem" or "disk") and, for
	// the disk engine, its block-cache hit/miss counters. A session server
	// reports them on GET /stats and in the /crawl terminal event.
	EngineStats = index.EngineStats
)

// BuildDisk streams rows — which must arrive in descending priority order;
// tuple r of the iteration gets rank r — into a disk-resident columnar
// store at path. The write is crash-safe (temp file, fsync, rename); the
// iterator is consumed once; memory stays bounded regardless of the
// dataset's size. opts.Bands partitions the store into priority-range
// bands for parallel batch fan-out, like NewShardedLocalServer's shards.
func BuildDisk(path string, schema *Schema, rows iter.Seq[Tuple], opts DiskBuildOptions) error {
	return diskstore.Build(path, schema, rows, opts)
}

// OpenDisk maps a store built by BuildDisk and returns it ready to serve.
// A damaged file is quarantined as path+".corrupt" and reported as a
// *DiskCorruptionError; see the package doc's on-disk section.
func OpenDisk(path string, opts DiskOpenOptions) (*DiskStore, error) {
	return diskstore.Open(path, opts)
}

// RankOrder returns the bag in the tuple-priority order NewLocalServer
// gives it under the same seed. Feed the result to BuildDisk and the disk
// store answers bit-identically to NewLocalServer(schema, tuples, k, seed).
func RankOrder(tuples Bag, seed uint64) []Tuple { return hiddendb.RankOrder(tuples, seed) }

// NewDiskLocalServer wraps an opened disk store as a LocalServer with
// return limit k: the full server contract — Answer, AnswerBatch, quotas,
// sessions, journals, the HTTP stack — over the disk engine. The store's
// rank order is its tuple priority (fixed at build time), so no seed is
// taken here; LocalServer.EngineStats exposes the block-cache counters.
func NewDiskLocalServer(store *DiskStore, k int) (*LocalServer, error) {
	return hiddendb.NewLocalEngine(store, k)
}

// Workload generators (see datagen for the fidelity discussion).
var (
	// YahooLike generates the Yahoo! Autos stand-in (69,768 tuples, mixed).
	YahooLike = datagen.YahooLike
	// NSFLike generates the NSF awards stand-in (47,816 tuples, categorical).
	NSFLike = datagen.NSFLike
	// AdultLike generates the census stand-in (45,222 tuples, mixed).
	AdultLike = datagen.AdultLike
	// AdultNumeric generates the numeric projection of AdultLike.
	AdultNumeric = datagen.AdultNumeric
	// HardNumeric builds the Theorem-3 adversarial numeric instance.
	HardNumeric = datagen.HardNumeric
	// HardCategorical builds the Theorem-4 adversarial categorical instance.
	HardCategorical = datagen.HardCategorical
)
