// Benchmarks regenerating every table and figure of the paper's evaluation
// (§6) at full workload sizes, plus the theorem verifications and the
// ablation studies. Each benchmark reports the figure's query counts as
// custom metrics (the paper's cost measure) alongside Go's time/allocation
// metrics, and logs the rendered table once per run:
//
//	go test -bench=. -benchmem                 # everything
//	go test -bench=BenchmarkFigure11a -v       # one figure, with its table
package hidb_test

import (
	"fmt"
	"math"
	"strings"
	"testing"
	"time"

	"hidb/internal/core"
	"hidb/internal/experiments"
)

func benchConfig() experiments.Config { return experiments.DefaultConfig() }

// reportFigure attaches every series point as a custom benchmark metric and
// logs the aligned table. Query-count series get the "_queries" unit that
// benchjson's baseline comparison pins bit-identical across PRs; timing
// series (e.g. the parallel ablation's wall clock) are inherently noisy and
// get "_ms" so they are never mistaken for cost metrics.
func reportFigure(b *testing.B, fig *experiments.Figure, err error) {
	b.Helper()
	if err != nil {
		b.Fatal(err)
	}
	for _, s := range fig.Series {
		unit := "queries"
		switch {
		case strings.HasSuffix(s.Label, "-ms"):
			unit = "ms"
		case strings.HasSuffix(s.Label, "-hitrate"):
			// Deterministic ratios (the fleet ablation's hit rate): pinned
			// bit-identical by benchjson alongside the _queries metrics.
			unit = "hitrate"
		}
		for i, v := range s.Values {
			name := fmt.Sprintf("%s_%s=%v_%s", s.Label, fig.XLabel, fig.X[i], unit)
			if math.IsNaN(v) {
				continue // unsolvable point (e.g. Yahoo at k=64)
			}
			b.ReportMetric(v, name)
		}
	}
	b.Log("\n" + fig.Table().String())
}

func BenchmarkFigure9(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tables := experiments.Figure9(benchConfig())
		if i == 0 {
			for _, t := range tables {
				b.Log("\n" + t.String())
			}
		}
	}
}

func BenchmarkFigure10a(b *testing.B) {
	var fig *experiments.Figure
	var err error
	for i := 0; i < b.N; i++ {
		fig, err = experiments.Figure10a(benchConfig())
	}
	reportFigure(b, fig, err)
}

func BenchmarkFigure10b(b *testing.B) {
	var fig *experiments.Figure
	var err error
	for i := 0; i < b.N; i++ {
		fig, err = experiments.Figure10b(benchConfig())
	}
	reportFigure(b, fig, err)
}

func BenchmarkFigure10c(b *testing.B) {
	var fig *experiments.Figure
	var err error
	for i := 0; i < b.N; i++ {
		fig, err = experiments.Figure10c(benchConfig())
	}
	reportFigure(b, fig, err)
}

func BenchmarkFigure11a(b *testing.B) {
	var fig *experiments.Figure
	var err error
	for i := 0; i < b.N; i++ {
		fig, err = experiments.Figure11a(benchConfig())
	}
	reportFigure(b, fig, err)
}

func BenchmarkFigure11b(b *testing.B) {
	var fig *experiments.Figure
	var err error
	for i := 0; i < b.N; i++ {
		fig, err = experiments.Figure11b(benchConfig())
	}
	reportFigure(b, fig, err)
}

func BenchmarkFigure11c(b *testing.B) {
	var fig *experiments.Figure
	var err error
	for i := 0; i < b.N; i++ {
		fig, err = experiments.Figure11c(benchConfig())
	}
	reportFigure(b, fig, err)
}

func BenchmarkFigure12(b *testing.B) {
	var fig *experiments.Figure
	var err error
	for i := 0; i < b.N; i++ {
		fig, err = experiments.Figure12(benchConfig())
	}
	reportFigure(b, fig, err)
}

func BenchmarkFigure13(b *testing.B) {
	var fig *experiments.Figure
	var err error
	for i := 0; i < b.N; i++ {
		fig, err = experiments.Figure13(benchConfig())
	}
	reportFigure(b, fig, err)
}

func BenchmarkTheorem3(b *testing.B) {
	var check *experiments.TheoremCheck
	var err error
	for i := 0; i < b.N; i++ {
		check, err = experiments.Theorem3(benchConfig(), 100, 8, 32)
	}
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(check.Cost), "queries")
	b.ReportMetric(float64(check.LowerBound), "lower_bound")
	b.ReportMetric(float64(check.UpperBound), "upper_bound")
}

func BenchmarkTheorem4(b *testing.B) {
	var check *experiments.TheoremCheck
	var err error
	for i := 0; i < b.N; i++ {
		check, err = experiments.Theorem4(benchConfig(), 8, 4, core.SliceCover{})
	}
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(check.Cost), "queries")
	b.ReportMetric(float64(check.UpperBound), "upper_bound")
}

func BenchmarkAblationSplitThreshold(b *testing.B) {
	var fig *experiments.Figure
	var err error
	for i := 0; i < b.N; i++ {
		fig, err = experiments.AblationSplitThreshold(benchConfig())
	}
	reportFigure(b, fig, err)
}

func BenchmarkAblationEagerVsLazy(b *testing.B) {
	var fig *experiments.Figure
	var err error
	for i := 0; i < b.N; i++ {
		fig, err = experiments.AblationEagerVsLazy(benchConfig())
	}
	reportFigure(b, fig, err)
}

func BenchmarkAblationDependencyFilter(b *testing.B) {
	var fig *experiments.Figure
	var err error
	for i := 0; i < b.N; i++ {
		fig, err = experiments.AblationDependencyFilter(benchConfig())
	}
	reportFigure(b, fig, err)
}

func BenchmarkAblationParallel(b *testing.B) {
	var fig *experiments.Figure
	var err error
	for i := 0; i < b.N; i++ {
		fig, err = experiments.AblationParallel(benchConfig(), 2*time.Millisecond)
	}
	reportFigure(b, fig, err)
}

func BenchmarkAblationFleet(b *testing.B) {
	var fig *experiments.Figure
	var err error
	for i := 0; i < b.N; i++ {
		fig, err = experiments.AblationFleet(benchConfig())
	}
	reportFigure(b, fig, err)
}

func BenchmarkAblationAttributeOrder(b *testing.B) {
	var fig *experiments.Figure
	var err error
	for i := 0; i < b.N; i++ {
		fig, err = experiments.AblationAttributeOrder(benchConfig())
	}
	reportFigure(b, fig, err)
}
