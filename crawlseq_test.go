package hidb_test

import (
	"context"
	"errors"
	"testing"

	"hidb"
	"hidb/internal/core"
	"hidb/internal/datagen"
	"hidb/internal/simrand"
)

// bigMixed builds a dataset large enough that crawls take hundreds of
// queries, so mid-stream behaviours are observable.
func bigMixed(t *testing.T) *hidb.Dataset {
	t.Helper()
	ds := hidb.AdultNumeric(3)
	return ds
}

// TestCrawlSeqMatchesCrawl: consuming the whole stream yields exactly
// Crawl's tuples, in order — streaming is delivery, not a different
// algorithm.
func TestCrawlSeqMatchesCrawl(t *testing.T) {
	ds := bigMixed(t)
	k := 1000
	srv, err := hidb.NewLocalServer(ds.Schema, ds.Tuples, k, 42)
	if err != nil {
		t.Fatal(err)
	}
	want, err := hidb.Crawl(context.Background(), srv, nil)
	if err != nil {
		t.Fatal(err)
	}

	var got hidb.Bag
	for tuple, err := range hidb.CrawlSeq(context.Background(), srv, nil) {
		if err != nil {
			t.Fatalf("stream error: %v", err)
		}
		got = append(got, tuple)
	}
	if len(got) != len(want.Tuples) {
		t.Fatalf("stream yielded %d tuples, Crawl returned %d", len(got), len(want.Tuples))
	}
	for i := range got {
		if !got[i].Equal(want.Tuples[i]) {
			t.Fatalf("stream tuple %d differs from Crawl's", i)
		}
	}
}

// TestCrawlSeqBreakCancels: breaking the range loop stops the crawl — the
// server sees no further queries once the consumer walks away.
func TestCrawlSeqBreakCancels(t *testing.T) {
	ds := bigMixed(t)
	srv, err := hidb.NewLocalServer(ds.Schema, ds.Tuples, 500, 42)
	if err != nil {
		t.Fatal(err)
	}
	full, err := hidb.Crawl(context.Background(), srv, nil)
	if err != nil {
		t.Fatal(err)
	}

	queries := 0
	count := func(hidb.CurvePoint) { queries++ }
	got := 0
	for _, err := range hidb.CrawlSeq(context.Background(), srv, &hidb.CrawlOptions{OnProgress: count}) {
		if err != nil {
			t.Fatalf("stream error: %v", err)
		}
		if got++; got == 5 {
			break
		}
	}
	// CrawlSeq returns only after the cancelled crawl has wound down, so
	// the counter is final here.
	if queries >= full.Queries {
		t.Fatalf("broken stream still paid %d of %d queries — break did not cancel", queries, full.Queries)
	}
}

// TestCrawlSeqQuotaPartialError: a stream dying on the server's budget
// ends with one PartialCrawlError wrapping ErrQuotaExceeded and carrying
// the paid cost; the tuples before it are a valid prefix.
func TestCrawlSeqQuotaPartialError(t *testing.T) {
	ds := bigMixed(t)
	srv, err := hidb.NewLocalServer(ds.Schema, ds.Tuples, 500, 42)
	if err != nil {
		t.Fatal(err)
	}
	const budget = 7
	limited, err := hidb.NewRateLimitedServer(srv, 1e9, 1<<20) // effectively unthrottled
	if err != nil {
		t.Fatal(err)
	}
	quotaed := newFacadeQuota(limited, budget)

	var tuples int
	var finalErr error
	for _, err := range hidb.CrawlSeq(context.Background(), quotaed, nil) {
		if err != nil {
			finalErr = err
			continue
		}
		tuples++
	}
	if !errors.Is(finalErr, hidb.ErrQuotaExceeded) {
		t.Fatalf("terminal error = %v, want ErrQuotaExceeded", finalErr)
	}
	var pe *hidb.PartialCrawlError
	if !errors.As(finalErr, &pe) {
		t.Fatalf("terminal error %T does not carry the partial cost", finalErr)
	}
	if pe.Queries != budget {
		t.Errorf("partial error reports %d paid queries, want the %d budget", pe.Queries, budget)
	}
}

// TestCrawlSeqCancelledCtx: an already-cancelled ctx produces no tuples,
// just the terminal error.
func TestCrawlSeqCancelledCtx(t *testing.T) {
	ds := bigMixed(t)
	srv, err := hidb.NewLocalServer(ds.Schema, ds.Tuples, 500, 42)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var finalErr error
	for _, err := range hidb.CrawlSeq(ctx, srv, nil) {
		if err != nil {
			finalErr = err
			continue
		}
		t.Fatal("cancelled stream yielded a tuple")
	}
	if !errors.Is(finalErr, context.Canceled) {
		t.Fatalf("terminal error = %v, want context.Canceled", finalErr)
	}
}

// TestCrawlSeqAllAlgorithms is the streaming half of the sequential-
// equivalence oracle: for every crawling algorithm, on a random data
// space it supports, consuming the whole CrawlSeq stream yields exactly
// Crawl's tuples in order; and a random mid-stream break followed by a
// journaled resume finishes the extraction with the journal holding
// exactly the algorithm's sequential query cost — streaming and
// interruption are delivery, never a different algorithm.
func TestCrawlSeqAllAlgorithms(t *testing.T) {
	rng := simrand.New(0x5E0 ^ 0x1234)
	specFor := func(name string) datagen.RandomSpec {
		switch name {
		case "binary-shrink", "rank-shrink":
			return datagen.RandomSpec{
				N:         800 + rng.Intn(1200),
				NumRanges: [][2]int64{{0, 2000 + rng.Int64n(30_000)}, {0, 500}},
				DupRate:   0.05,
			}
		case "dfs", "slice-cover", "lazy-slice-cover":
			return datagen.RandomSpec{
				N:          800 + rng.Intn(1200),
				CatDomains: []int{3 + rng.Intn(6), 5 + rng.Intn(20)},
				Skew:       rng.Float64(),
				DupRate:    0.05,
			}
		default: // hybrid
			return datagen.RandomSpec{
				N:          800 + rng.Intn(1200),
				CatDomains: []int{3 + rng.Intn(8)},
				NumRanges:  [][2]int64{{0, 2000 + rng.Int64n(20_000)}},
				Skew:       rng.Float64(),
				DupRate:    0.05,
			}
		}
	}
	for _, name := range hidb.CrawlerNames() {
		t.Run(name, func(t *testing.T) {
			crawler, err := hidb.NewCrawler(name)
			if err != nil {
				t.Fatal(err)
			}
			ds, err := datagen.Random(specFor(name), rng.Uint64())
			if err != nil {
				t.Fatal(err)
			}
			k := 24 + rng.Intn(40)
			if m := ds.Tuples.MaxMultiplicity(); m > k {
				k = m
			}
			srv, err := hidb.NewLocalServer(ds.Schema, ds.Tuples, k, 42)
			if err != nil {
				t.Fatal(err)
			}
			ref, err := crawler.Crawl(context.Background(), srv, nil)
			if err != nil {
				t.Fatal(err)
			}
			if !ref.Tuples.EqualMultiset(ds.Tuples) {
				t.Fatal("reference crawl incomplete")
			}

			// Full stream == Crawl, tuple for tuple, in order.
			var got hidb.Bag
			for tuple, err := range core.CrawlSeq(context.Background(), crawler, srv, nil) {
				if err != nil {
					t.Fatalf("stream error: %v", err)
				}
				got = append(got, tuple)
			}
			if len(got) != len(ref.Tuples) {
				t.Fatalf("stream yielded %d tuples, Crawl %d", len(got), len(ref.Tuples))
			}
			for i := range got {
				if !got[i].Equal(ref.Tuples[i]) {
					t.Fatalf("stream tuple %d differs from Crawl's", i)
				}
			}

			// Random break, then a journaled resume: the combined cost is
			// exactly the sequential reference.
			cut := 1 + rng.Intn(len(ref.Tuples))
			jnl := hidb.NewJournal(srv.Schema(), srv.K())
			jsrv, err := hidb.WithJournal(srv, jnl)
			if err != nil {
				t.Fatal(err)
			}
			seen := 0
			for _, err := range core.CrawlSeq(context.Background(), crawler, jsrv, nil) {
				if err != nil {
					t.Fatalf("stream error before break: %v", err)
				}
				if seen++; seen == cut {
					break
				}
			}
			if jnl.Len() > ref.Queries {
				t.Fatalf("broken stream journaled %d queries, reference is %d", jnl.Len(), ref.Queries)
			}
			var resumed hidb.Bag
			for tuple, err := range core.CrawlSeq(context.Background(), crawler, jsrv, nil) {
				if err != nil {
					t.Fatalf("resume stream error: %v", err)
				}
				resumed = append(resumed, tuple)
			}
			if !resumed.EqualMultiset(ds.Tuples) {
				t.Fatal("resumed stream incomplete")
			}
			if jnl.Len() != ref.Queries {
				t.Fatalf("after resume the journal holds %d queries, want the sequential cost %d",
					jnl.Len(), ref.Queries)
			}
		})
	}
}

// facadeQuota is a minimal budget wrapper through the public API (the
// library's own Quota lives in an internal package).
type facadeQuota struct {
	inner  hidb.Server
	budget int
}

func newFacadeQuota(inner hidb.Server, budget int) hidb.Server {
	return hidb.BatchedServer(&facadeQuota{inner: inner, budget: budget})
}

func (f *facadeQuota) Answer(q hidb.Query) (hidb.QueryResult, error) {
	if f.budget <= 0 {
		return hidb.QueryResult{}, hidb.ErrQuotaExceeded
	}
	f.budget--
	return f.inner.Answer(context.Background(), q)
}
func (f *facadeQuota) K() int               { return f.inner.K() }
func (f *facadeQuota) Schema() *hidb.Schema { return f.inner.Schema() }
