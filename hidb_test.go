package hidb_test

import (
	"context"
	"errors"
	"net/http/httptest"
	"testing"

	"hidb"
)

func carSchema(t *testing.T) *hidb.Schema {
	t.Helper()
	return hidb.MustSchema([]hidb.Attribute{
		{Name: "Body", Kind: hidb.Categorical, DomainSize: 3},
		{Name: "Price", Kind: hidb.Numeric, Min: 0, Max: 100000},
	})
}

func carBag() hidb.Bag {
	return hidb.Bag{
		{1, 9500}, {1, 9500}, {1, 14300}, {2, 4200},
		{2, 21000}, {3, 7800}, {3, 12650}, {3, 30500},
	}
}

func TestCrawlPicksAlgorithmAndCompletes(t *testing.T) {
	srv, err := hidb.NewLocalServer(carSchema(t), carBag(), 2, 42)
	if err != nil {
		t.Fatal(err)
	}
	res, err := hidb.Crawl(context.Background(), srv, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Tuples.EqualMultiset(carBag()) {
		t.Fatal("facade crawl incomplete")
	}
	if res.Queries < len(carBag())/2 {
		t.Fatalf("impossible cost %d", res.Queries)
	}
}

// TestPlannerHitRateDuringCrawl pins the plan cache's reason to exist: a
// crawl issues thousands of structurally identical queries (same attribute
// and predicate-kind pattern, different constants), so all but the first few
// plan-cache lookups must hit.
func TestPlannerHitRateDuringCrawl(t *testing.T) {
	ds := hidb.YahooLike(9)
	if testing.Short() {
		ds = hidb.AdultLike(9)
		ds.Tuples = ds.Tuples[:5000]
	}
	srv, err := hidb.NewLocalServer(ds.Schema, ds.Tuples, 1000, 9)
	if err != nil {
		t.Fatal(err)
	}
	res, err := hidb.Crawl(context.Background(), srv, nil)
	if err != nil {
		t.Fatal(err)
	}
	ps := srv.PlanStats()
	if ps.Hits+ps.Misses < int64(res.Queries) {
		t.Fatalf("planner saw %d lookups for %d queries", ps.Hits+ps.Misses, res.Queries)
	}
	if hr := ps.HitRate(); hr <= 0.9 {
		t.Errorf("plan-cache hit rate %.3f over %d queries, want > 0.9 (%d shapes cached)",
			hr, res.Queries, ps.Shapes)
	} else {
		t.Logf("plan-cache hit rate %.4f over %d queries, %d shapes, paths %v",
			hr, res.Queries, ps.Shapes, ps.Paths)
	}
	var executed int64
	for _, c := range ps.Paths {
		executed += c
	}
	if executed < int64(res.Queries) {
		t.Errorf("access-path executions %d < crawl queries %d", executed, res.Queries)
	}
}

func TestBestCrawlerSelection(t *testing.T) {
	mixed := carSchema(t)
	if got := hidb.BestCrawler(mixed).Name(); got != "hybrid" {
		t.Errorf("mixed -> %s", got)
	}
	num := hidb.MustSchema([]hidb.Attribute{{Name: "N", Kind: hidb.Numeric}})
	if got := hidb.BestCrawler(num).Name(); got != "rank-shrink" {
		t.Errorf("numeric -> %s", got)
	}
	cat := hidb.MustSchema([]hidb.Attribute{{Name: "C", Kind: hidb.Categorical, DomainSize: 2}})
	if got := hidb.BestCrawler(cat).Name(); got != "lazy-slice-cover" {
		t.Errorf("categorical -> %s", got)
	}
}

func TestNewCrawlerNames(t *testing.T) {
	for _, name := range hidb.CrawlerNames() {
		if _, err := hidb.NewCrawler(name); err != nil {
			t.Errorf("NewCrawler(%q): %v", name, err)
		}
	}
	if _, err := hidb.NewCrawler("nope"); err == nil {
		t.Error("unknown name accepted")
	}
}

func TestUnsolvableSurfaced(t *testing.T) {
	bag := hidb.Bag{}
	for i := 0; i < 5; i++ {
		bag = append(bag, hidb.Tuple{1, 777})
	}
	srv, err := hidb.NewLocalServer(carSchema(t), bag, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	_, err = hidb.Crawl(context.Background(), srv, nil)
	if !errors.Is(err, hidb.ErrUnsolvable) {
		t.Fatalf("err = %v, want ErrUnsolvable", err)
	}
}

func TestHTTPEndToEndThroughFacade(t *testing.T) {
	srv, err := hidb.NewLocalServer(carSchema(t), carBag(), 3, 42)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(hidb.NewHTTPHandler(srv, 0))
	defer ts.Close()

	remote, err := hidb.DialHTTP(context.Background(), ts.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := hidb.Crawl(context.Background(), remote, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Tuples.EqualMultiset(carBag()) {
		t.Fatal("remote facade crawl incomplete")
	}
}

func TestHTTPQuotaThroughFacade(t *testing.T) {
	srv, err := hidb.NewLocalServer(carSchema(t), carBag(), 1, 42)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(hidb.NewHTTPHandler(srv, 2))
	defer ts.Close()
	remote, err := hidb.DialHTTP(context.Background(), ts.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	_, err = hidb.Crawl(context.Background(), remote, nil)
	if !errors.Is(err, hidb.ErrQuotaExceeded) {
		t.Fatalf("err = %v, want ErrQuotaExceeded", err)
	}
}

func TestWorkloadGeneratorsExported(t *testing.T) {
	if testing.Short() {
		t.Skip("full-size generators skipped in -short mode")
	}
	y := hidb.YahooLike(1)
	if y.N() != 69768 {
		t.Errorf("YahooLike n = %d", y.N())
	}
	n := hidb.NSFLike(1)
	if n.N() != 47816 {
		t.Errorf("NSFLike n = %d", n.N())
	}
	a := hidb.AdultLike(1)
	if a.N() != 45222 {
		t.Errorf("AdultLike n = %d", a.N())
	}
	hn, err := hidb.HardNumeric(5, 2, 4)
	if err != nil || hn.N() != 5*(4+2) {
		t.Errorf("HardNumeric: n=%d err=%v", hn.N(), err)
	}
	hc, err := hidb.HardCategorical(3, 3)
	if err != nil || hc.N() != 6*3 {
		t.Errorf("HardCategorical: n=%d err=%v", hc.N(), err)
	}
}

func TestQueryConstruction(t *testing.T) {
	sch := carSchema(t)
	q, err := hidb.NewQuery(sch, []hidb.Pred{
		{Value: 2},
		{Lo: 1000, Hi: 5000},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !q.Covers(hidb.Tuple{2, 4200}) || q.Covers(hidb.Tuple{1, 4200}) {
		t.Error("facade query coverage wrong")
	}
	u := hidb.UniverseQuery(sch)
	if !u.Covers(hidb.Tuple{3, 99999}) {
		t.Error("universe coverage wrong")
	}
}
