module hidb

go 1.24
